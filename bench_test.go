// Benchmarks that regenerate every table and figure of the paper's
// evaluation (docs/ARCHITECTURE.md, "Evaluation pipeline") plus
// per-component and per-predictor micro-benchmarks.
//
// The table/figure benches run on reduced corpora so that `go test -bench=.`
// completes quickly; `cmd/eval` runs the full-size experiments. Accuracy
// results are attached to the benchmark output via b.ReportMetric (MAPE in
// percent), so the benchmark log doubles as a compact experiment record.
package facile_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"facile"
	"facile/internal/baselines"
	"facile/internal/bb"
	"facile/internal/bhive"
	"facile/internal/core"
	"facile/internal/cycleratio"
	"facile/internal/eval"
	"facile/internal/pipesim"
	"facile/internal/uarch"
)

const (
	benchCorpusN = 120
	benchTrainN  = 120
)

// BenchmarkTable1_Configs regenerates Table 1 (the µarch inventory).
func BenchmarkTable1_Configs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = eval.Table1()
	}
}

// BenchmarkTable2_Accuracy regenerates Table 2 on a reduced corpus for a
// representative subset of microarchitectures and reports Facile's and
// uiCA's MAPE on BHiveU/BHiveL as metrics.
func BenchmarkTable2_Accuracy(b *testing.B) {
	var rows []eval.AccuracyRow
	for i := 0; i < b.N; i++ {
		rows, _ = eval.Table2(benchCorpusN, benchTrainN,
			[]*uarch.Config{uarch.MustByName("RKL"), uarch.MustByName("SKL"), uarch.MustByName("SNB")})
	}
	for _, row := range rows {
		if row.Predictor == "Facile" || row.Predictor == "uiCA" {
			b.ReportMetric(row.MAPEU*100, row.Arch+"_"+row.Predictor+"_mapeU_%")
			b.ReportMetric(row.MAPEL*100, row.Arch+"_"+row.Predictor+"_mapeL_%")
		}
	}
}

// BenchmarkTable3_Ablations regenerates the component-ablation study.
func BenchmarkTable3_Ablations(b *testing.B) {
	var rows []eval.VariantRow
	for i := 0; i < b.N; i++ {
		rows, _ = eval.Table3(benchCorpusN, []*uarch.Config{uarch.MustByName("RKL")})
	}
	for _, row := range rows {
		if row.Variant == "Facile" || row.Variant == "Facile w/o Ports" {
			if row.HasU {
				// Metric units must not contain whitespace.
				name := strings.ReplaceAll(row.Variant, " ", "-")
				name = strings.ReplaceAll(name, "/", "")
				b.ReportMetric(row.MAPEU*100, name+"_mapeU_%")
			}
		}
	}
}

// BenchmarkTable4_Idealization regenerates the idealization-speedup table.
func BenchmarkTable4_Idealization(b *testing.B) {
	var rows []eval.SpeedupRow
	for i := 0; i < b.N; i++ {
		rows, _ = eval.Table4(benchCorpusN, []*uarch.Config{uarch.MustByName("SNB"), uarch.MustByName("RKL")})
	}
	for _, row := range rows {
		b.ReportMetric(row.Speedups[core.Predec], row.Arch+"_predec_speedup")
		b.ReportMetric(row.Speedups[core.Ports], row.Arch+"_ports_speedup")
	}
}

// BenchmarkFigure3_Heatmaps regenerates the measured-vs-predicted heatmaps.
func BenchmarkFigure3_Heatmaps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = eval.Figure3(benchCorpusN, uarch.MustByName("RKL"))
	}
}

// BenchmarkFigure4_ComponentTimes regenerates the per-component timing
// distributions.
func BenchmarkFigure4_ComponentTimes(b *testing.B) {
	var tpu []eval.ComponentTime
	for i := 0; i < b.N; i++ {
		tpu, _, _ = eval.Figure4(benchCorpusN, uarch.MustByName("SKL"))
	}
	for _, ct := range tpu {
		b.ReportMetric(ct.MeanMs*1000, ct.Name+"_usPerBlock")
	}
}

// BenchmarkFigure5_PredictorTimes regenerates the per-predictor timing
// comparison and reports each predictor's time per benchmark.
func BenchmarkFigure5_PredictorTimes(b *testing.B) {
	var rows []eval.PredictorTime
	for i := 0; i < b.N; i++ {
		rows, _ = eval.Figure5(benchCorpusN, benchTrainN, uarch.MustByName("SKL"))
	}
	for _, r := range rows {
		b.ReportMetric(r.MsU*1000, r.Name+"_usPerBlock")
	}
}

// BenchmarkFigure6_BottleneckFlow regenerates the bottleneck-evolution
// analysis.
func BenchmarkFigure6_BottleneckFlow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = eval.BottleneckFlow(benchCorpusN,
			[]*uarch.Config{uarch.MustByName("SNB"), uarch.MustByName("HSW"), uarch.MustByName("CLX"), uarch.MustByName("RKL")})
	}
}

// --- Micro-benchmarks: predictors ------------------------------------------

func benchBlocks(b *testing.B, cfg *uarch.Config, loop bool) []*bb.Block {
	b.Helper()
	corpus := bhive.Generate(eval.DefaultSeed, benchCorpusN)
	var blocks []*bb.Block
	for _, bm := range corpus {
		code := bm.Code
		if loop {
			code = bm.LoopCode
		}
		block, err := bb.Build(cfg, code)
		if err != nil {
			continue
		}
		blocks = append(blocks, block)
	}
	return blocks
}

// BenchmarkPredictor measures the per-block cost of Facile versus the
// simulation-based reference (the headline efficiency claim: almost two
// orders of magnitude).
func BenchmarkPredictor(b *testing.B) {
	preds := []baselines.Predictor{
		baselines.Facile{},
		baselines.UiCA{},
		baselines.LLVMMCA{},
		baselines.OSACA{},
		baselines.IACA{},
		baselines.CQA{},
	}
	for _, pred := range preds {
		for _, mode := range []string{"TPU", "TPL"} {
			loop := mode == "TPL"
			b.Run(fmt.Sprintf("%s/%s", pred.Name(), mode), func(b *testing.B) {
				blocks := benchBlocks(b, uarch.MustByName("SKL"), loop)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pred.Predict(blocks[i%len(blocks)], loop)
				}
			})
		}
	}
}

// BenchmarkComponent measures each Facile component in isolation
// (Figure 4's microdata).
func BenchmarkComponent(b *testing.B) {
	comps := []struct {
		name string
		fn   func(*bb.Block)
	}{
		{"Predec", func(bl *bb.Block) { core.PredecBound(bl, core.TPU) }},
		{"SimplePredec", func(bl *bb.Block) { core.SimplePredecBound(bl, core.TPU) }},
		{"Dec", func(bl *bb.Block) { core.DecBound(bl) }},
		{"SimpleDec", func(bl *bb.Block) { core.SimpleDecBound(bl) }},
		{"DSB", func(bl *bb.Block) { core.DSBBound(bl) }},
		{"LSD", func(bl *bb.Block) { core.LSDBound(bl) }},
		{"Issue", func(bl *bb.Block) { core.IssueBound(bl) }},
		{"Ports", func(bl *bb.Block) { core.PortsBound(bl) }},
		{"Precedence", func(bl *bb.Block) { core.PrecedenceBound(bl) }},
	}
	for _, c := range comps {
		b.Run(c.name, func(b *testing.B) {
			blocks := benchBlocks(b, uarch.MustByName("SKL"), false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.fn(blocks[i%len(blocks)])
			}
		})
	}
}

// BenchmarkDecodeAndPrepare measures the shared "overhead" stage
// (disassembly + descriptor lookup + fusion marking).
func BenchmarkDecodeAndPrepare(b *testing.B) {
	corpus := bhive.Generate(eval.DefaultSeed, benchCorpusN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm := corpus[i%len(corpus)]
		if _, err := bb.Build(uarch.MustByName("SKL"), bm.Code); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulator measures the reference simulator on its own.
func BenchmarkSimulator(b *testing.B) {
	blocks := benchBlocks(b, uarch.MustByName("SKL"), true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipesim.Run(blocks[i%len(blocks)], pipesim.Options{Loop: true})
	}
}

// --- Ablation benchmarks for load-bearing design choices ------------------

// BenchmarkAblationPorts compares the pairwise port-combination heuristic
// (paper §4.8) against the exhaustive subset-enumeration bound it replaces.
// The two return identical results on corpus blocks (property-tested in
// internal/core); this bench quantifies the efficiency win.
func BenchmarkAblationPorts(b *testing.B) {
	blocks := benchBlocks(b, uarch.MustByName("SKL"), false)
	b.Run("Pairwise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.PortsBound(blocks[i%len(blocks)])
		}
	})
	b.Run("ExactSubsets", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.PortsBoundExact(blocks[i%len(blocks)])
		}
	})
}

// BenchmarkAblationCycleRatio compares Howard's policy iteration (paper
// §4.9) against the parametric binary-search/Bellman-Ford reference on the
// same dependence graphs.
func BenchmarkAblationCycleRatio(b *testing.B) {
	blocks := benchBlocks(b, uarch.MustByName("SKL"), true)
	graphs := make([]*cycleratio.Graph, len(blocks))
	for i, block := range blocks {
		graphs[i], _ = core.BuildDependenceGraph(block)
	}
	b.Run("Howard", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cycleratio.MaxRatio(graphs[i%len(graphs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("BellmanFordBisection", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cycleratio.MaxRatioReference(graphs[i%len(graphs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationPredec compares the full predecoder model against the
// SimplePredec variant (the paper's Table 3 shows the accuracy cost; this
// shows the runtime cost of the detailed model).
func BenchmarkAblationPredec(b *testing.B) {
	blocks := benchBlocks(b, uarch.MustByName("SKL"), false)
	b.Run("Full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.PredecBound(blocks[i%len(blocks)], core.TPU)
		}
	})
	b.Run("Simple", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.SimplePredecBound(blocks[i%len(blocks)], core.TPU)
		}
	})
}

// BenchmarkPublicAPI measures the end-to-end one-shot entry point — the
// default engine's Analyze path, warm after the first pass over the corpus.
func BenchmarkPublicAPI(b *testing.B) {
	corpus := bhive.Generate(eval.DefaultSeed, benchCorpusN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm := corpus[i%len(corpus)]
		if _, err := predict(facile.DefaultEngine(), bm.LoopCode, "SKL", facile.Loop); err != nil {
			b.Fatal(err)
		}
	}
}

// uncachedEngine builds the one-shot baseline: an engine with memoization
// disabled, so every call pays the full decode+predict cost.
func uncachedEngine(b *testing.B, archs ...string) *facile.Engine {
	b.Helper()
	engine, err := facile.NewEngine(facile.EngineConfig{Archs: archs, CacheSize: -1})
	if err != nil {
		b.Fatal(err)
	}
	return engine
}

// --- Hot-path benchmarks (tracked in BENCH_2.json by the CI bench job) ------

// BenchmarkPredict measures one full core prediction per op on prepared
// corpus blocks — the analysis-core hot path behind every cache miss. Run
// with -benchmem: the bound-vector refactor's claim is a near-zero
// allocs/op here.
func BenchmarkPredict(b *testing.B) {
	blocks := benchBlocks(b, uarch.MustByName("SKL"), true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Predict(blocks[i%len(blocks)], core.TPL, core.Options{})
	}
}

// BenchmarkSpeedups compares the one-pass counterfactual path (compute the
// bound vector once, recombine per component) against the N+1-predictions
// algorithm it replaced (re-running the full predictor per exclusion set,
// reconstructed here via Options.Include).
func BenchmarkSpeedups(b *testing.B) {
	blocks := benchBlocks(b, uarch.MustByName("SKL"), true)
	b.Run("Recombine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.IdealizationSpeedups(blocks[i%len(blocks)], core.TPL)
		}
	})
	b.Run("NPlus1Predictions", func(b *testing.B) {
		comps := core.SpeedupComponents(core.TPL)
		for i := 0; i < b.N; i++ {
			block := blocks[i%len(blocks)]
			base := core.Predict(block, core.TPL, core.Options{}).TP
			for _, c := range comps {
				without := core.Predict(block, core.TPL,
					core.Options{Include: core.AllComponents.Without(c)})
				if without.TP > 0 {
					_ = base / without.TP
				}
			}
		}
	})
}

// BenchmarkExplain measures the full bottleneck report: the one-shot path
// re-derives everything per call; the warm engine serves the memoized
// rendered report.
func BenchmarkExplain(b *testing.B) {
	corpus := bhive.Generate(eval.DefaultSeed, 50)
	var codes [][]byte
	for _, bm := range corpus {
		if _, err := predict(facile.DefaultEngine(), bm.LoopCode, "SKL", facile.Loop); err == nil {
			codes = append(codes, bm.LoopCode)
		}
	}
	if len(codes) == 0 {
		b.Fatal("no valid corpus blocks")
	}
	b.Run("OneShot", func(b *testing.B) {
		engine := uncachedEngine(b, "SKL")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := explainText(engine, codes[i%len(codes)], "SKL", facile.Loop); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("EngineWarm", func(b *testing.B) {
		engine, err := facile.NewEngine(facile.EngineConfig{Archs: []string{"SKL"}})
		if err != nil {
			b.Fatal(err)
		}
		for _, code := range codes {
			if _, err := explainText(engine, code, "SKL", facile.Loop); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := explainText(engine, codes[i%len(codes)], "SKL", facile.Loop); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Engine benchmarks ------------------------------------------------------

// engineBatchReqs builds a batch of n requests cycling over the valid blocks
// of a small corpus — the repeated-block workload of a superoptimizer search
// loop or a BHive-scale evaluation.
func engineBatchReqs(b *testing.B, n int) []blockReq {
	b.Helper()
	corpus := bhive.Generate(eval.DefaultSeed, 50)
	var distinct []blockReq
	for _, bm := range corpus {
		if _, err := predict(facile.DefaultEngine(), bm.LoopCode, "SKL", facile.Loop); err != nil {
			continue
		}
		distinct = append(distinct, blockReq{
			Code: bm.LoopCode, Arch: "SKL", Mode: facile.Loop,
		})
	}
	if len(distinct) == 0 {
		b.Fatal("no valid corpus blocks")
	}
	reqs := make([]blockReq, n)
	for i := range reqs {
		reqs[i] = distinct[i%len(distinct)]
	}
	return reqs
}

// BenchmarkEngineVsPredict compares the engine against the one-shot Predict
// path on a batch of 1000 repeated blocks (~50 distinct). One benchmark
// iteration processes the whole batch, so ns/op numbers are directly
// comparable across the three sub-benchmarks; the engine variants exceed the
// one-shot path by well over an order of magnitude once the cache is warm.
func BenchmarkEngineVsPredict(b *testing.B) {
	const batchSize = 1000
	reqs := engineBatchReqs(b, batchSize)

	b.Run("OneShotPredict", func(b *testing.B) {
		engine := uncachedEngine(b, "SKL")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, r := range reqs {
				if _, err := predict(engine, r.Code, r.Arch, r.Mode); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("EngineSerial", func(b *testing.B) {
		engine, err := facile.NewEngine(facile.EngineConfig{Archs: []string{"SKL"}})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, r := range reqs {
				if _, err := predict(engine, r.Code, r.Arch, r.Mode); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("EngineBatch", func(b *testing.B) {
		engine, err := facile.NewEngine(facile.EngineConfig{Archs: []string{"SKL"}})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, res := range predictBatch(engine, reqs) {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		}
	})
}

// BenchmarkAnalyzeWarm quantifies the consolidation win of the unified
// entrypoint: a warm full-detail Analyze resolves its cache entry exactly
// once and returns the memoized Analysis (prediction + bounds + speedups +
// report), where the legacy surface answered the same three questions with
// three separate lookups. Cache resolutions per op are reported as a metric
// from the engine's own stats, making the 1-vs-3 claim visible in the
// benchmark log.
func BenchmarkAnalyzeWarm(b *testing.B) {
	const batchSize = 200
	reqs := engineBatchReqs(b, batchSize)
	warm := func(b *testing.B) *facile.Engine {
		b.Helper()
		engine, err := facile.NewEngine(facile.EngineConfig{Archs: []string{"SKL"}})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range reqs {
			if _, err := explainText(engine, r.Code, r.Arch, r.Mode); err != nil {
				b.Fatal(err)
			}
		}
		return engine
	}
	reportResolutions := func(b *testing.B, engine *facile.Engine, before facile.EngineStats) {
		b.Helper()
		after := engine.Stats()
		if miss := after.Misses - before.Misses; miss != 0 {
			b.Fatalf("warm run missed the cache %d times", miss)
		}
		b.ReportMetric(float64(after.Hits-before.Hits)/float64(b.N*batchSize), "resolutions/block")
	}
	b.Run("AnalyzeFullDetail", func(b *testing.B) {
		engine := warm(b)
		before := engine.Stats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, r := range reqs {
				req := facile.Request{Code: r.Code, Arch: r.Arch, Mode: r.Mode, Detail: facile.DetailFull}
				if _, err := engine.Analyze(context.Background(), req); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		reportResolutions(b, engine, before)
	})
	b.Run("ThreeNarrowCalls", func(b *testing.B) {
		engine := warm(b)
		before := engine.Stats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, r := range reqs {
				if _, err := predict(engine, r.Code, r.Arch, r.Mode); err != nil {
					b.Fatal(err)
				}
				if _, err := speedupMap(engine, r.Code, r.Arch, r.Mode); err != nil {
					b.Fatal(err)
				}
				if _, err := explainText(engine, r.Code, r.Arch, r.Mode); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		reportResolutions(b, engine, before)
	})
}

// BenchmarkEngineColdCache measures the worst case for the engine: 1000
// *distinct* blocks on a fresh engine, so every request misses the
// prediction cache. Serially a caching engine loses to an uncached one here
// (the cache retains every block, raising GC pressure, with no memoization
// payoff) — that is why CacheSize: -1 is the right configuration for
// non-repeating streams. EngineFreshBatch shows the worker pool reclaiming
// the win on the same workload.
func BenchmarkEngineColdCache(b *testing.B) {
	corpus := bhive.Generate(eval.DefaultSeed, 1000)
	var reqs []blockReq
	for _, bm := range corpus {
		if _, err := predict(facile.DefaultEngine(), bm.LoopCode, "SKL", facile.Loop); err != nil {
			continue
		}
		reqs = append(reqs, blockReq{Code: bm.LoopCode, Arch: "SKL", Mode: facile.Loop})
	}
	b.Run("OneShotPredictDistinct", func(b *testing.B) {
		engine := uncachedEngine(b, "SKL")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, r := range reqs {
				if _, err := predict(engine, r.Code, r.Arch, r.Mode); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("EngineFreshSerial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			engine, err := facile.NewEngine(facile.EngineConfig{Archs: []string{"SKL"}})
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range reqs {
				if _, err := predict(engine, r.Code, r.Arch, r.Mode); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("EngineFreshBatch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			engine, err := facile.NewEngine(facile.EngineConfig{Archs: []string{"SKL"}})
			if err != nil {
				b.Fatal(err)
			}
			for _, res := range predictBatch(engine, reqs) {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		}
	})
}

// BenchmarkAnalyzeWarmParallel is the serving-tier contention benchmark
// (tracked in BENCH_9.json): many workers resolving warm full-detail Analyze
// calls concurrently, where the cache lookup IS the whole operation. Sharded
// routes each key to one of N independent LRU shards; SingleShard forces the
// pre-sharding layout (CacheShards: 1), where every lookup serializes on one
// mutex. Run with -cpu 8 so GOMAXPROCS provides the worker parallelism; the
// gap between the sub-benchmarks is the sharding win. The gap scales with
// *physical* parallelism: lock contention needs a holder and a waiter on
// CPU at the same instant, so on a single-core runner (like the CI
// container) the two sub-benchmarks tie — which still pins down the other
// half of the claim, that sharding adds no per-lookup overhead.
func BenchmarkAnalyzeWarmParallel(b *testing.B) {
	const batchSize = 200
	reqs := engineBatchReqs(b, batchSize)
	run := func(b *testing.B, shards int) {
		engine, err := facile.NewEngine(facile.EngineConfig{
			Archs: []string{"SKL"}, CacheShards: shards,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range reqs {
			if _, err := predict(engine, r.Code, r.Arch, r.Mode); err != nil {
				b.Fatal(err)
			}
		}
		before := engine.Stats()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				r := reqs[i%len(reqs)]
				i++
				req := facile.Request{Code: r.Code, Arch: r.Arch, Mode: r.Mode, Detail: facile.DetailFull}
				if _, err := engine.Analyze(context.Background(), req); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.StopTimer()
		if miss := engine.Stats().Misses - before.Misses; miss != 0 {
			b.Fatalf("warm parallel run missed the cache %d times", miss)
		}
		if sec := b.Elapsed().Seconds(); sec > 0 {
			b.ReportMetric(float64(b.N)/sec, "blocks/s")
		}
	}
	b.Run("Sharded", func(b *testing.B) { run(b, 0) })
	b.Run("SingleShard", func(b *testing.B) { run(b, 1) })
}

// BenchmarkSnapshotWarmStart measures time-to-first-hit after a restart
// (tracked in BENCH_9.json): one iteration boots a fresh engine and serves
// the whole working set once. WarmStart first imports a snapshot exported by
// the previous "process" — off the timer, the way facile-serve imports before
// the listener takes traffic — so the serving pass runs entirely on cache
// hits; ColdStart computes every distinct block on first encounter. The
// ns/op gap is the request latency the -snapshot flag removes from the
// post-restart warmup window.
func BenchmarkSnapshotWarmStart(b *testing.B) {
	const batchSize = 200
	reqs := engineBatchReqs(b, batchSize)
	donor, err := facile.NewEngine(facile.EngineConfig{Archs: []string{"SKL"}})
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range reqs {
		req := facile.Request{Code: r.Code, Arch: r.Arch, Mode: r.Mode, Detail: facile.DetailFull}
		if _, err := donor.Analyze(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
	var snap bytes.Buffer
	if _, err := donor.ExportSnapshot(&snap, 0); err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, warmStart bool) {
		for i := 0; i < b.N; i++ {
			engine, err := facile.NewEngine(facile.EngineConfig{Archs: []string{"SKL"}})
			if err != nil {
				b.Fatal(err)
			}
			if warmStart {
				b.StopTimer()
				if _, _, err := engine.ImportSnapshot(context.Background(), bytes.NewReader(snap.Bytes())); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			for _, r := range reqs {
				if _, err := predict(engine, r.Code, r.Arch, r.Mode); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("ColdStart", func(b *testing.B) { run(b, false) })
	b.Run("WarmStart", func(b *testing.B) { run(b, true) })
}
