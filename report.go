package facile

import (
	"fmt"
	"strings"
	"sync"
)

// Report is the structured bottleneck report of an Analysis: the decoded
// block with bottleneck markers, the per-component bound breakdown, the
// primary-bottleneck evidence (critical dependence chain or contended port
// group), and the counterfactual speedups. It renders as both JSON (the
// exported fields) and text (Text, byte-identical to the historical Explain
// output). Reports returned by an Engine are memoized and shared — treat
// them as read-only.
type Report struct {
	Arch               string  `json:"arch"`
	Mode               Mode    `json:"mode"`
	CyclesPerIteration float64 `json:"cycles_per_iteration"`
	// Block is the disassembled block, one line per instruction, with each
	// instruction's role in the bottleneck marked.
	Block []ReportLine `json:"block"`
	// Bounds is the per-component breakdown in pipeline order.
	Bounds []ComponentBound `json:"bounds"`
	// FrontEndSource names the front-end component selected for TPL
	// predictions; empty for TPU.
	FrontEndSource string `json:"front_end_source,omitempty"`
	// PrimaryBottleneck is the first (front-end-first) bottleneck.
	PrimaryBottleneck string `json:"primary_bottleneck,omitempty"`
	// CriticalChain and ContendedPorts/ContendedInstrs carry the evidence
	// for a Precedence or Ports bottleneck respectively.
	CriticalChain   []int  `json:"critical_chain,omitempty"`
	ContendedPorts  string `json:"contended_ports,omitempty"`
	ContendedInstrs []int  `json:"contended_instrs,omitempty"`
	// Speedups is the counterfactual table, sorted descending.
	Speedups []Speedup `json:"speedups"`

	// textOnce memoizes the rendered text, so repeated Text calls never
	// re-render.
	textOnce sync.Once
	text     string
}

// ReportLine is one instruction of a Report's block listing.
type ReportLine struct {
	Index int    `json:"index"`
	Text  string `json:"text"`
	// Marker flags the instruction's role in the primary bottleneck:
	// "D" — on the critical loop-carried dependence cycle,
	// "P" — restricted to the contended execution ports, "" — neither.
	Marker string `json:"marker,omitempty"`
}

// buildReport assembles the structured report from a prediction, its ordered
// bound breakdown, and its sorted speedup list (all shared, read-only).
func buildReport(pred *Prediction, bounds []ComponentBound, speedups []Speedup) *Report {
	r := &Report{
		Arch:               pred.Arch,
		Mode:               pred.Mode,
		CyclesPerIteration: pred.CyclesPerIteration,
		Bounds:             bounds,
		FrontEndSource:     pred.FrontEndSource,
		CriticalChain:      pred.CriticalChain,
		ContendedPorts:     pred.ContendedPorts,
		ContendedInstrs:    pred.ContendedInstrs,
		Speedups:           speedups,
	}
	if len(pred.Bottlenecks) > 0 {
		r.PrimaryBottleneck = pred.Bottlenecks[0]
	}
	marked := map[int]string{}
	switch r.PrimaryBottleneck {
	case "Precedence":
		for _, k := range pred.CriticalChain {
			marked[k] = "D"
		}
	case "Ports":
		for _, k := range pred.ContendedInstrs {
			marked[k] = "P"
		}
	}
	r.Block = make([]ReportLine, len(pred.Instructions))
	for k, line := range pred.Instructions {
		r.Block[k] = ReportLine{Index: k, Text: line, Marker: marked[k]}
	}
	return r
}

// Text renders the human-readable report. The rendering is memoized; the
// output is byte-identical to the historical Explain format (and pinned by
// golden files), with component bounds and the counterfactual table printed
// in pipeline order.
func (r *Report) Text() string {
	r.textOnce.Do(func() { r.text = r.render() })
	return r.text
}

func (r *Report) render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Facile throughput report — %s, %s\n", r.Arch, r.Mode)
	fmt.Fprintf(&sb, "Predicted: %.2f cycles/iteration\n\n", r.CyclesPerIteration)

	sb.WriteString("Block:\n")
	for _, line := range r.Block {
		marker := "   "
		switch line.Marker {
		case "D":
			marker = " D " // on the critical dependence cycle
		case "P":
			marker = " P " // restricted to the contended ports
		}
		fmt.Fprintf(&sb, "  %2d%s%s\n", line.Index, marker, line.Text)
	}

	sb.WriteString("\nComponent bounds (cycles/iteration):\n")
	for _, b := range r.Bounds {
		mark := " "
		if b.Bottleneck {
			mark = "*"
		}
		fmt.Fprintf(&sb, "  %s %-11s %8.2f\n", mark, b.Component, b.Cycles)
	}
	if r.FrontEndSource != "" {
		fmt.Fprintf(&sb, "  front end served by: %s\n", r.FrontEndSource)
	}

	if r.PrimaryBottleneck != "" {
		fmt.Fprintf(&sb, "\nPrimary bottleneck: %s\n", r.PrimaryBottleneck)
		switch r.PrimaryBottleneck {
		case "Precedence":
			fmt.Fprintf(&sb, "  loop-carried dependence chain through instructions %v (marked D)\n", r.CriticalChain)
		case "Ports":
			fmt.Fprintf(&sb, "  contention on ports %s by instructions %v (marked P)\n", r.ContendedPorts, r.ContendedInstrs)
		}
	}

	sb.WriteString("\nCounterfactual speedups (component made infinitely fast):\n")
	// The table prints in pipeline order (matching the bounds section and
	// the golden files); r.Speedups itself is sorted by factor.
	for _, name := range ComponentNames() {
		for i := range r.Speedups {
			if r.Speedups[i].Component == name {
				fmt.Fprintf(&sb, "  %-11s %.2fx\n", name, r.Speedups[i].Factor)
				break
			}
		}
	}
	return sb.String()
}
