package facile

import (
	"fmt"
	"strings"

	"facile/internal/core"
)

// Explain produces a human-readable bottleneck report for the block: the
// disassembly, the per-component bounds, the bottleneck analysis with the
// supporting instructions (critical dependence chain or contended port
// group), and the counterfactual speedups.
//
// Like Predict, Explain is the one-shot path; Engine.Explain reuses the
// engine's cached decoded block and prediction and memoizes the rendered
// report.
func Explain(code []byte, arch string, mode Mode) (string, error) {
	block, err := prepare(code, arch, mode)
	if err != nil {
		return "", err
	}
	// One bound-vector pass serves both the prediction and the
	// counterfactual table (the speedups are recombinations of p.Bounds).
	m := coreMode(mode)
	p := core.Predict(block, m, core.Options{})
	pred := publicPrediction(&p, block, arch, mode)
	return renderReport(pred, speedupMap(p.Bounds.Speedups(m), m)), nil
}

// renderReport renders the bottleneck report from an existing prediction and
// speedup table. Components print in pipeline order (ComponentNames), which
// keeps the output deterministic without sorting.
func renderReport(pred Prediction, speedups map[string]float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Facile throughput report — %s, %s\n", pred.Arch, pred.Mode)
	fmt.Fprintf(&sb, "Predicted: %.2f cycles/iteration\n\n", pred.CyclesPerIteration)

	sb.WriteString("Block:\n")
	critical := map[int]bool{}
	contended := map[int]bool{}
	primary := ""
	if len(pred.Bottlenecks) > 0 {
		primary = pred.Bottlenecks[0]
	}
	if primary == "Precedence" {
		for _, k := range pred.CriticalChain {
			critical[k] = true
		}
	}
	if primary == "Ports" {
		for _, k := range pred.ContendedInstrs {
			contended[k] = true
		}
	}
	for k, line := range pred.Instructions {
		marker := "   "
		switch {
		case critical[k]:
			marker = " D " // on the critical dependence cycle
		case contended[k]:
			marker = " P " // restricted to the contended ports
		}
		fmt.Fprintf(&sb, "  %2d%s%s\n", k, marker, line)
	}

	sb.WriteString("\nComponent bounds (cycles/iteration):\n")
	for _, name := range ComponentNames() {
		v, ok := pred.Components[name]
		if !ok {
			continue
		}
		mark := " "
		for _, b := range pred.Bottlenecks {
			if b == name {
				mark = "*"
			}
		}
		fmt.Fprintf(&sb, "  %s %-11s %8.2f\n", mark, name, v)
	}
	if pred.FrontEndSource != "" {
		fmt.Fprintf(&sb, "  front end served by: %s\n", pred.FrontEndSource)
	}

	if primary != "" {
		fmt.Fprintf(&sb, "\nPrimary bottleneck: %s\n", primary)
		switch primary {
		case "Precedence":
			fmt.Fprintf(&sb, "  loop-carried dependence chain through instructions %v (marked D)\n", pred.CriticalChain)
		case "Ports":
			fmt.Fprintf(&sb, "  contention on ports %s by instructions %v (marked P)\n", pred.ContendedPorts, pred.ContendedInstrs)
		}
	}

	sb.WriteString("\nCounterfactual speedups (component made infinitely fast):\n")
	for _, name := range ComponentNames() {
		if v, ok := speedups[name]; ok {
			fmt.Fprintf(&sb, "  %-11s %.2fx\n", name, v)
		}
	}
	return sb.String()
}
