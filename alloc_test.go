//go:build !race

package facile_test

import (
	"context"
	"testing"

	"facile"
)

// Allocation regression guards for the engine hot paths, excluded under the
// race detector (its instrumentation skews allocation accounting); the CI
// benchmark job runs them race-free.

// TestEngineWarmReportTextZeroAllocs: the rendered report is memoized on the
// shared Analysis, so a warm Analyze at DetailFull plus Report.Text() must
// not allocate — the lookup probes the LRU with a zero-copy key and the text
// is rendered exactly once.
func TestEngineWarmReportTextZeroAllocs(t *testing.T) {
	e := newTestEngine(t, facile.EngineConfig{Archs: []string{"SKL"}})
	code := decode(t, "480307 4883c708 48ffc9 75f2")
	ctx := context.Background()
	req := facile.Request{Code: code, Arch: "SKL", Mode: facile.Loop, Detail: facile.DetailFull}

	ana, err := e.Analyze(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if ana.Report.Text() == "" {
		t.Fatal("empty report")
	}

	if allocs := testing.AllocsPerRun(200, func() {
		ana, err := e.Analyze(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if ana.Report.Text() == "" {
			t.Fatal("empty report")
		}
	}); allocs != 0 {
		t.Errorf("warm Analyze+Report.Text allocates %.1f/op, want 0", allocs)
	}
}

// TestAnalyzeBatchWarmZeroPerBlockAllocs: the chunked batch kernel must do
// zero per-block work on warm batches — the only allocations a warm
// AnalyzeBatchN makes are the per-call fixed ones (the results slice and
// the scheduler's group/chunk bookkeeping), so the count must not move when
// the batch grows 16x. The per-call constant is pinned too, so a stray
// fixed-cost allocation cannot hide behind the scaling check.
func TestAnalyzeBatchWarmZeroPerBlockAllocs(t *testing.T) {
	e := newTestEngine(t, facile.EngineConfig{Archs: []string{"SKL", "ICL"}})
	ctx := context.Background()
	codes := [][]byte{
		decode(t, "4801d8"),
		decode(t, "4801d8480fafc3"),
		decode(t, "480307 4883c708 48ffc9 75f2"),
		decode(t, "48ffc04883c103"),
	}
	mkReqs := func(n int) []facile.Request {
		reqs := make([]facile.Request, n)
		for i := range reqs {
			reqs[i] = facile.Request{Code: codes[i%len(codes)], Arch: "SKL", Mode: facile.Loop}
			if i%3 == 1 {
				reqs[i].Arch = "ICL" // heterogeneous: exercise the grouped path
			}
		}
		return reqs
	}
	warm := func(reqs []facile.Request) {
		for i := range reqs {
			if _, err := e.Analyze(ctx, reqs[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	small, large := mkReqs(16), mkReqs(256)
	warm(small)
	warm(large)

	measure := func(reqs []facile.Request) float64 {
		return testing.AllocsPerRun(100, func() {
			out := e.AnalyzeBatchN(ctx, reqs, 1)
			for i := range out {
				if out[i].Err != nil {
					t.Fatal(out[i].Err)
				}
			}
		})
	}
	aSmall, aLarge := measure(small), measure(large)
	if aLarge != aSmall {
		t.Errorf("warm batch allocations scale with size: %d blocks -> %.1f, %d blocks -> %.1f (want equal)",
			len(small), aSmall, len(large), aLarge)
	}
	// Fixed per-call budget: results slice + scheduler order/group/chunk
	// bookkeeping. Anything above that is a regression.
	if aLarge > 6 {
		t.Errorf("warm AnalyzeBatchN fixed overhead is %.1f allocs/call, want <= 6", aLarge)
	}
}

// TestAnalyzeWarmHitZeroAllocs: a warm Analyze at any Detail returns the
// memoized shared Analysis — one cache resolution, zero allocations — so
// the unified entrypoint costs no more than the narrowest legacy view.
func TestAnalyzeWarmHitZeroAllocs(t *testing.T) {
	e := newTestEngine(t, facile.EngineConfig{Archs: []string{"SKL"}})
	code := decode(t, "480307 4883c708 48ffc9 75f2")
	ctx := context.Background()

	for d := facile.DetailPrediction; d <= facile.DetailFull; d++ {
		req := facile.Request{Code: code, Arch: "SKL", Mode: facile.Loop, Detail: d}
		if _, err := e.Analyze(ctx, req); err != nil {
			t.Fatal(err)
		}
		if allocs := testing.AllocsPerRun(200, func() {
			if _, err := e.Analyze(ctx, req); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("warm Analyze(%v) hit allocates %.1f/op, want 0", d, allocs)
		}
	}
}
