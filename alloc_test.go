//go:build !race

package facile_test

import (
	"context"
	"testing"

	"facile"
)

// Allocation regression guards for the engine hot paths, excluded under the
// race detector (its instrumentation skews allocation accounting); the CI
// benchmark job runs them race-free.

// TestEngineWarmHitZeroAllocs: a warm cache hit — Predict, Speedups, and
// Explain alike — must not allocate: the lookup probes the LRU with a
// zero-copy key and every derived view is memoized in the entry.
func TestEngineWarmHitZeroAllocs(t *testing.T) {
	e := newTestEngine(t, facile.EngineConfig{Archs: []string{"SKL"}})
	code := decode(t, "480307 4883c708 48ffc9 75f2")

	if _, err := e.Predict(code, "SKL", facile.Loop); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Speedups(code, "SKL", facile.Loop); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Explain(code, "SKL", facile.Loop); err != nil {
		t.Fatal(err)
	}

	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := e.Predict(code, "SKL", facile.Loop); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("warm Engine.Predict hit allocates %.1f/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := e.Speedups(code, "SKL", facile.Loop); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("warm Engine.Speedups hit allocates %.1f/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := e.Explain(code, "SKL", facile.Loop); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("warm Engine.Explain hit allocates %.1f/op, want 0", allocs)
	}
}

// TestAnalyzeWarmHitZeroAllocs: a warm Analyze at any Detail returns the
// memoized shared Analysis — one cache resolution, zero allocations — so
// the unified entrypoint costs no more than the narrowest legacy view.
func TestAnalyzeWarmHitZeroAllocs(t *testing.T) {
	e := newTestEngine(t, facile.EngineConfig{Archs: []string{"SKL"}})
	code := decode(t, "480307 4883c708 48ffc9 75f2")
	ctx := context.Background()

	for d := facile.DetailPrediction; d <= facile.DetailFull; d++ {
		req := facile.Request{Code: code, Arch: "SKL", Mode: facile.Loop, Detail: d}
		if _, err := e.Analyze(ctx, req); err != nil {
			t.Fatal(err)
		}
		if allocs := testing.AllocsPerRun(200, func() {
			if _, err := e.Analyze(ctx, req); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("warm Analyze(%v) hit allocates %.1f/op, want 0", d, allocs)
		}
	}
}
