// Command facile-client demonstrates driving the Facile prediction service
// (cmd/facile-serve) over HTTP from Go: one single-block prediction, one
// batch, and the structured /v1/analyze response with its bound breakdown
// and sorted counterfactual speedup table.
//
// Start the server, then run the client:
//
//	go run ./cmd/facile-serve &
//	go run ./examples/facile-client -addr http://localhost:8629
//
// The wire types are plain JSON (docs/API.md); this client declares the
// subset of fields it reads.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"
)

type blockRequest struct {
	Code string `json:"code"`
	Arch string `json:"arch"`
	Mode string `json:"mode,omitempty"`
}

type prediction struct {
	CyclesPerIteration float64            `json:"cycles_per_iteration"`
	Bottlenecks        []string           `json:"bottlenecks"`
	Components         map[string]float64 `json:"components"`
	Instructions       []string           `json:"instructions"`
}

type batchResponse struct {
	Results []struct {
		Prediction *prediction `json:"prediction"`
		Error      string      `json:"error"`
	} `json:"results"`
}

type analyzeRequest struct {
	blockRequest
	Detail string `json:"detail,omitempty"`
}

// analyzeResponse declares the subset of the /v1/analyze structured
// Analysis this client reads: the prediction, the ordered bound breakdown,
// and the counterfactual speedups — already sorted descending by the
// server, so rendering needs no map iteration.
type analyzeResponse struct {
	Prediction prediction `json:"prediction"`
	Bounds     []struct {
		Component  string  `json:"component"`
		Cycles     float64 `json:"cycles"`
		Bottleneck bool    `json:"bottleneck"`
	} `json:"bounds"`
	Speedups []struct {
		Component string  `json:"component"`
		Factor    float64 `json:"factor"`
	} `json:"speedups"`
}

func main() {
	addr := flag.String("addr", "http://localhost:8629", "facile-serve base URL")
	flag.Parse()
	client := &http.Client{Timeout: 10 * time.Second}

	// One block: the README quick-start pair (add rax,rbx; imul rax,rbx).
	var pred prediction
	post(client, *addr+"/v1/predict",
		blockRequest{Code: "4801d8480fafc3", Arch: "SKL", Mode: "loop"}, &pred)
	fmt.Printf("single block on SKL: %.2f cycles/iteration, bottleneck %s\n",
		pred.CyclesPerIteration, pred.Bottlenecks[0])
	for i, inst := range pred.Instructions {
		fmt.Printf("  %2d  %s\n", i, inst)
	}

	// The same block across microarchitectures in one round trip; the
	// server fans the batch across the engine's worker pool.
	batch := struct {
		Requests    []blockRequest `json:"requests"`
		Concurrency int            `json:"concurrency,omitempty"`
	}{Concurrency: 4}
	archs := []string{"SNB", "HSW", "SKL", "ICL", "RKL"}
	for _, arch := range archs {
		batch.Requests = append(batch.Requests,
			blockRequest{Code: "4801d8480fafc3", Arch: arch, Mode: "loop"})
	}
	var results batchResponse
	post(client, *addr+"/v1/predict/batch", batch, &results)
	fmt.Println("\nacross generations:")
	for i, res := range results.Results {
		if res.Error != "" {
			fmt.Printf("  %-4s error: %s\n", archs[i], res.Error)
			continue
		}
		fmt.Printf("  %-4s %.2f cycles/iteration\n", archs[i], res.Prediction.CyclesPerIteration)
	}

	// What would help? One /v1/analyze round trip returns the structured
	// analysis: bound breakdown plus the counterfactual table of the
	// paper's Table 4, sorted most-profitable first.
	var ana analyzeResponse
	post(client, *addr+"/v1/analyze", analyzeRequest{
		blockRequest: blockRequest{Code: "4801d8480fafc3", Arch: "SKL", Mode: "loop"},
		Detail:       "speedups",
	}, &ana)
	fmt.Println("\nbound breakdown on SKL (pipeline order, * = bottleneck):")
	for _, b := range ana.Bounds {
		mark := " "
		if b.Bottleneck {
			mark = "*"
		}
		fmt.Printf("  %s %-11s %.2f\n", mark, b.Component, b.Cycles)
	}
	fmt.Println("\ncounterfactual speedups on SKL (most profitable first):")
	for _, sp := range ana.Speedups {
		if sp.Factor > 1 {
			fmt.Printf("  %-11s %.2fx\n", sp.Component, sp.Factor)
		}
	}
}

// post sends v as JSON and decodes the 200 response into out.
func post(client *http.Client, url string, v, out any) {
	body, err := json.Marshal(v)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatalf("%s: %v (is facile-serve running?)", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		log.Fatalf("%s: HTTP %d: %s", url, resp.StatusCode, msg)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatalf("%s: decoding response: %v", url, err)
	}
}
