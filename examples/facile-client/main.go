// Command facile-client demonstrates driving the Facile prediction service
// (cmd/facile-serve) over HTTP from Go: one single-block prediction, one
// batch, and the counterfactual speedup table.
//
// Start the server, then run the client:
//
//	go run ./cmd/facile-serve &
//	go run ./examples/facile-client -addr http://localhost:8629
//
// The wire types are plain JSON (docs/API.md); this client declares the
// subset of fields it reads.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"
)

type blockRequest struct {
	Code string `json:"code"`
	Arch string `json:"arch"`
	Mode string `json:"mode,omitempty"`
}

type prediction struct {
	CyclesPerIteration float64            `json:"cycles_per_iteration"`
	Bottlenecks        []string           `json:"bottlenecks"`
	Components         map[string]float64 `json:"components"`
	Instructions       []string           `json:"instructions"`
}

type batchResponse struct {
	Results []struct {
		Prediction *prediction `json:"prediction"`
		Error      string      `json:"error"`
	} `json:"results"`
}

type speedupsResponse struct {
	CyclesPerIteration float64            `json:"cycles_per_iteration"`
	Speedups           map[string]float64 `json:"speedups"`
}

func main() {
	addr := flag.String("addr", "http://localhost:8629", "facile-serve base URL")
	flag.Parse()
	client := &http.Client{Timeout: 10 * time.Second}

	// One block: the README quick-start pair (add rax,rbx; imul rax,rbx).
	var pred prediction
	post(client, *addr+"/v1/predict",
		blockRequest{Code: "4801d8480fafc3", Arch: "SKL", Mode: "loop"}, &pred)
	fmt.Printf("single block on SKL: %.2f cycles/iteration, bottleneck %s\n",
		pred.CyclesPerIteration, pred.Bottlenecks[0])
	for i, inst := range pred.Instructions {
		fmt.Printf("  %2d  %s\n", i, inst)
	}

	// The same block across microarchitectures in one round trip; the
	// server fans the batch across the engine's worker pool.
	batch := struct {
		Requests    []blockRequest `json:"requests"`
		Concurrency int            `json:"concurrency,omitempty"`
	}{Concurrency: 4}
	archs := []string{"SNB", "HSW", "SKL", "ICL", "RKL"}
	for _, arch := range archs {
		batch.Requests = append(batch.Requests,
			blockRequest{Code: "4801d8480fafc3", Arch: arch, Mode: "loop"})
	}
	var results batchResponse
	post(client, *addr+"/v1/predict/batch", batch, &results)
	fmt.Println("\nacross generations:")
	for i, res := range results.Results {
		if res.Error != "" {
			fmt.Printf("  %-4s error: %s\n", archs[i], res.Error)
			continue
		}
		fmt.Printf("  %-4s %.2f cycles/iteration\n", archs[i], res.Prediction.CyclesPerIteration)
	}

	// What would help? The counterfactual table of the paper's Table 4.
	var sp speedupsResponse
	post(client, *addr+"/v1/speedups",
		blockRequest{Code: "4801d8480fafc3", Arch: "SKL", Mode: "loop"}, &sp)
	fmt.Println("\ncounterfactual speedups on SKL:")
	for comp, v := range sp.Speedups {
		if v > 1 {
			fmt.Printf("  %-11s %.2fx\n", comp, v)
		}
	}
}

// post sends v as JSON and decodes the 200 response into out.
func post(client *http.Client, url string, v, out any) {
	body, err := json.Marshal(v)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatalf("%s: %v (is facile-serve running?)", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		log.Fatalf("%s: HTTP %d: %s", url, resp.StatusCode, msg)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatalf("%s: decoding response: %v", url, err)
	}
}
