// Quickstart: analyze a basic block on several microarchitectures with the
// public facile API — one Engine.Analyze request per arch, each returning
// prediction, bound breakdown, and sorted counterfactual speedups together.
package main

import (
	"context"
	"encoding/hex"
	"fmt"
	"log"

	"facile"
)

func main() {
	// A small reduction loop body:
	//   add rax, [rdi]      ; accumulate
	//   add rdi, 8          ; advance pointer
	//   dec rcx             ; loop counter
	//   jne .               ; back edge (macro-fuses with dec)
	code, err := hex.DecodeString("480307" + "4883c708" + "48ffc9" + "75f2")
	if err != nil {
		log.Fatal(err)
	}

	lines, err := facile.Disassemble(code)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Block:")
	for i, line := range lines {
		fmt.Printf("  %d: %s\n", i, line)
	}

	// One engine serves all microarchitectures; the batch call fans the
	// per-arch analyses across a worker pool and returns them in order.
	// DetailSpeedups materializes the counterfactual table alongside each
	// prediction — same single bound computation either way.
	engine, err := facile.NewEngine(facile.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	archs := engine.Archs()
	reqs := make([]facile.Request, len(archs))
	for i, arch := range archs {
		reqs[i] = facile.Request{Code: code, Arch: arch, Mode: facile.Loop, Detail: facile.DetailSpeedups}
	}

	fmt.Println("\nPredicted loop throughput (cycles/iteration):")
	for i, res := range engine.AnalyzeBatch(context.Background(), reqs) {
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		pred := res.Analysis.Prediction
		// Speedups are sorted descending, so the first entry is the most
		// profitable component to idealize on that arch.
		top := res.Analysis.Speedups[0]
		fmt.Printf("  %-4s %5.2f   front end: %-6s bottleneck: %-12v idealize %s -> %.2fx\n",
			archs[i], pred.CyclesPerIteration, pred.FrontEndSource, pred.Bottlenecks,
			top.Component, top.Factor)
	}

	// Cross-check one prediction against the reference simulator; the engine
	// reuses the block it already decoded for the analysis above.
	sim, err := engine.Simulate(code, "SKL", facile.Loop)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nReference simulator (SKL): %.2f cycles/iteration\n", sim)
}
