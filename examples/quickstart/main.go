// Quickstart: predict the throughput of a basic block on several
// microarchitectures with the public facile API.
package main

import (
	"encoding/hex"
	"fmt"
	"log"

	"facile"
)

func main() {
	// A small reduction loop body:
	//   add rax, [rdi]      ; accumulate
	//   add rdi, 8          ; advance pointer
	//   dec rcx             ; loop counter
	//   jne .               ; back edge (macro-fuses with dec)
	code, err := hex.DecodeString("480307" + "4883c708" + "48ffc9" + "75f2")
	if err != nil {
		log.Fatal(err)
	}

	lines, err := facile.Disassemble(code)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Block:")
	for i, line := range lines {
		fmt.Printf("  %d: %s\n", i, line)
	}

	// One engine serves all microarchitectures; the batch call fans the
	// per-arch predictions across a worker pool and returns them in order.
	engine, err := facile.NewEngine(facile.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	archs := engine.Archs()
	reqs := make([]facile.BatchRequest, len(archs))
	for i, arch := range archs {
		reqs[i] = facile.BatchRequest{Code: code, Arch: arch, Mode: facile.Loop}
	}

	fmt.Println("\nPredicted loop throughput (cycles/iteration):")
	for i, res := range engine.PredictBatch(reqs) {
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		fmt.Printf("  %-4s %5.2f   front end: %-6s bottleneck: %v\n",
			archs[i], res.Prediction.CyclesPerIteration,
			res.Prediction.FrontEndSource, res.Prediction.Bottlenecks)
	}

	// Cross-check one prediction against the reference simulator; the engine
	// reuses the block it already decoded for the prediction above.
	sim, err := engine.Simulate(code, "SKL", facile.Loop)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nReference simulator (SKL): %.2f cycles/iteration\n", sim)
}
