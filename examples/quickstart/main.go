// Quickstart: predict the throughput of a basic block on several
// microarchitectures with the public facile API.
package main

import (
	"encoding/hex"
	"fmt"
	"log"

	"facile"
)

func main() {
	// A small reduction loop body:
	//   add rax, [rdi]      ; accumulate
	//   add rdi, 8          ; advance pointer
	//   dec rcx             ; loop counter
	//   jne .               ; back edge (macro-fuses with dec)
	code, err := hex.DecodeString("480307" + "4883c708" + "48ffc9" + "75f2")
	if err != nil {
		log.Fatal(err)
	}

	lines, err := facile.Disassemble(code)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Block:")
	for i, line := range lines {
		fmt.Printf("  %d: %s\n", i, line)
	}

	fmt.Println("\nPredicted loop throughput (cycles/iteration):")
	for _, arch := range facile.Archs() {
		pred, err := facile.Predict(code, arch, facile.Loop)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-4s %5.2f   bottleneck: %v\n",
			arch, pred.CyclesPerIteration, pred.Bottlenecks)
	}

	// Cross-check one prediction against the reference simulator.
	sim, err := facile.Simulate(code, "SKL", facile.Loop)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nReference simulator (SKL): %.2f cycles/iteration\n", sim)
}
