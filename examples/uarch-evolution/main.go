// Uarch-evolution: exploit Facile's interpretability to compare processor
// generations and hypothetical design points (the paper's §6.4, extended in
// the AnICA "as many scenarios as you can imagine" direction) — for a fixed
// workload, how do the per-component bounds evolve from Sandy Bridge to
// Rocket Lake, and which single hardware change would move the needle most?
//
// The generations table uses plain Analyze calls. The what-if half drives
// the design-space sweep subsystem (internal/sweep): a parameter grid is
// enumerated as ephemeral variants of Skylake — derived and validated but
// never registered — analyzed over a workload, and folded into a ranked
// frontier with the bottleneck shifts that explain each win. The ranking is
// byte-deterministic at any worker count.
package main

import (
	"context"
	"fmt"
	"log"

	"facile"
	"facile/internal/asm"
	"facile/internal/bhive"
	"facile/internal/sweep"
	"facile/internal/x86"
)

// sklGrid is the what-if design space: would Skylake have been better off
// keeping its LSD (SKL150 erratum), skipping the JCC-erratum mitigation,
// or spending the transistors on a wider issue stage instead?
const sklGrid = `{
  "base": "SKL",
  "mode": "loop",
  "axes": [
    {"param": "issue_width", "values": [4, 6], "labels": ["4wide", "6wide"]},
    {"param": "lsd_enabled", "values": [false, true]},
    {"param": "jcc_erratum", "values": [true, false]}
  ]
}`

func main() {
	// A vectorized accumulate-multiply kernel with a mixed profile:
	// loads, FP multiply-add work, integer bookkeeping.
	instrs := []asm.Instr{
		asm.Mk(x86.MOVUPS, 128, asm.R(x86.X0), asm.M(x86.RDI, 0)),
		asm.Mk(x86.MULPS, 128, asm.R(x86.X0), asm.R(x86.X4)),
		asm.Mk(x86.ADDPS, 128, asm.R(x86.X1), asm.R(x86.X0)),
		asm.Mk(x86.MOVUPS, 128, asm.R(x86.X2), asm.M(x86.RDI, 16)),
		asm.Mk(x86.MULPS, 128, asm.R(x86.X2), asm.R(x86.X4)),
		asm.Mk(x86.ADDPS, 128, asm.R(x86.X3), asm.R(x86.X2)),
		asm.Mk(x86.ADD, 64, asm.R(x86.RDI), asm.I(32)),
		asm.Mk(x86.DEC, 64, asm.R(x86.RCX)),
		asm.MkCC(x86.JCC, x86.CondNE, 64, asm.I(-37)),
	}
	code, err := asm.EncodeBlock(instrs)
	if err != nil {
		log.Fatal(err)
	}

	lines, _ := facile.Disassemble(code)
	fmt.Println("Kernel:")
	for _, l := range lines {
		fmt.Println("  " + l)
	}

	engine, err := facile.NewEngine(facile.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nGenerations (oldest first):")
	printHeader()
	infos := engine.Registry().Infos()
	for i := 8; i >= 0; i-- { // the nine built-ins, oldest first
		printRow(engine, code, infos[i].Name)
	}

	// The what-if sweep: the kernel plus a deterministic block corpus, so
	// the frontier ranks design points by workload-wide impact rather than
	// one loop's quirks. Every grid point is an ephemeral variant — the
	// registry still holds exactly the nine built-ins afterwards.
	grid, err := sweep.ParseGrid([]byte(sklGrid))
	if err != nil {
		log.Fatal(err)
	}
	workload := [][]byte{code}
	for _, b := range bhive.Generate(42, 127) {
		workload = append(workload, b.LoopCode)
	}
	res, err := sweep.Run(context.Background(), engine, grid,
		sweep.Workload{Blocks: workload, Mode: facile.Loop}, sweep.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWhat-if design points (%d-block workload, ephemeral variants):\n", len(workload))
	fmt.Print(res.Text(0))
	fmt.Printf("registered arches after the sweep: %d (variants never register)\n",
		len(engine.Registry().Archs()))
}

var comps = facile.ComponentNames()

func printHeader() {
	fmt.Printf("%-10s %8s  %-12s", "uArch", "cyc/it", "bottleneck")
	for _, c := range comps {
		fmt.Printf(" %10s", c)
	}
	fmt.Printf("  %s\n", "FE source")
}

// printRow analyzes the kernel on arch (TPL) and prints one table row: the
// headline number, the primary bottleneck, and the full bound breakdown in
// its deterministic pipeline order (components absent on an arch — e.g. a
// disabled LSD — print as "-").
func printRow(engine *facile.Engine, code []byte, arch string) {
	ana, err := engine.Analyze(context.Background(), facile.Request{
		Code: code, Arch: arch, Mode: facile.Loop,
	})
	if err != nil {
		log.Fatal(err)
	}
	pred := ana.Prediction
	primary := "-"
	if len(pred.Bottlenecks) > 0 {
		primary = pred.Bottlenecks[0]
	}
	fmt.Printf("%-10s %8.2f  %-12s", arch, pred.CyclesPerIteration, primary)
	// ana.Bounds is already in pipeline order; walk it against the full
	// component list so absent components keep their column.
	next := 0
	for _, c := range comps {
		if next < len(ana.Bounds) && ana.Bounds[next].Component == c {
			fmt.Printf(" %10.2f", ana.Bounds[next].Cycles)
			next++
		} else {
			fmt.Printf(" %10s", "-")
		}
	}
	fmt.Printf("  %-6s\n", pred.FrontEndSource)
}
