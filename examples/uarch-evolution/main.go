// Uarch-evolution: exploit Facile's interpretability and the runtime
// microarchitecture registry to compare generations and hypothetical design
// points (the paper's §6.4, extended in the AnICA "as many scenarios as you
// can imagine" direction): for a fixed workload, how do the per-component
// bounds evolve from Sandy Bridge to Rocket Lake — and what would change if
// Skylake had kept its LSD, or Ice Lake issued only 4-wide?
//
// The what-if machines are spec overlays: a base arch plus just the
// overridden fields, registered at runtime. No recompilation, and the same
// engine caches predictions for built-in and derived arches alike.
package main

import (
	"context"
	"fmt"
	"log"

	"facile"
	"facile/internal/asm"
	"facile/internal/x86"
)

// variants are the what-if design points, as overlays on built-in bases.
var variants = []struct {
	name, base, why string
	overlay         string
}{
	{"SKL+LSD", "SKL", "Skylake without the SKL150 erratum (LSD kept on)",
		`{"lsd_enabled": true}`},
	{"SKL-JCC", "SKL", "Skylake without the JCC-erratum mitigation",
		`{"jcc_erratum": false}`},
	{"ICL-4W", "ICL", "Ice Lake issuing 4-wide like SKL",
		`{"issue_width": 4, "retire_width": 4}`},
	{"ICL-FP1", "ICL", "Ice Lake with a single FP pipe (port 0 only)",
		`{"role_ports": {"fpadd": [0], "fpmul": [0], "fma": [0]}}`},
}

func main() {
	// A vectorized accumulate-multiply kernel with a mixed profile:
	// loads, FP multiply-add work, integer bookkeeping.
	instrs := []asm.Instr{
		asm.Mk(x86.MOVUPS, 128, asm.R(x86.X0), asm.M(x86.RDI, 0)),
		asm.Mk(x86.MULPS, 128, asm.R(x86.X0), asm.R(x86.X4)),
		asm.Mk(x86.ADDPS, 128, asm.R(x86.X1), asm.R(x86.X0)),
		asm.Mk(x86.MOVUPS, 128, asm.R(x86.X2), asm.M(x86.RDI, 16)),
		asm.Mk(x86.MULPS, 128, asm.R(x86.X2), asm.R(x86.X4)),
		asm.Mk(x86.ADDPS, 128, asm.R(x86.X3), asm.R(x86.X2)),
		asm.Mk(x86.ADD, 64, asm.R(x86.RDI), asm.I(32)),
		asm.Mk(x86.DEC, 64, asm.R(x86.RCX)),
		asm.MkCC(x86.JCC, x86.CondNE, 64, asm.I(-37)),
	}
	code, err := asm.EncodeBlock(instrs)
	if err != nil {
		log.Fatal(err)
	}

	lines, _ := facile.Disassemble(code)
	fmt.Println("Kernel:")
	for _, l := range lines {
		fmt.Println("  " + l)
	}

	// A private registry for the experiment: the nine built-ins plus the
	// derived design points, isolated from the process default.
	reg := facile.NewArchRegistry()
	for _, v := range variants {
		if _, err := reg.Derive(v.name, v.base, []byte(v.overlay)); err != nil {
			log.Fatal(err)
		}
	}

	// One engine over that registry: the kernel is decoded and predicted
	// once per arch (built-in or derived), and repeat queries below are
	// cache hits.
	engine, err := facile.NewEngine(facile.EngineConfig{Registry: reg})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nGenerations (oldest first):")
	printHeader()
	infos := engine.Registry().Infos()
	for i := 8; i >= 0; i-- { // the nine built-ins, oldest first
		printRow(engine, code, infos[i].Name, "")
	}

	fmt.Println("\nWhat-if design points (spec overlays):")
	printHeader()
	for _, v := range variants {
		printRow(engine, code, v.name, v.why)
		// The base row again for contrast, served from the warm cache.
		printRow(engine, code, v.base, "the shipped "+v.base)
	}
}

var comps = facile.ComponentNames()

func printHeader() {
	fmt.Printf("%-10s %8s  %-12s", "uArch", "cyc/it", "bottleneck")
	for _, c := range comps {
		fmt.Printf(" %10s", c)
	}
	fmt.Printf("  %s\n", "FE source")
}

// printRow analyzes the kernel on arch (TPL) and prints one table row: the
// headline number, the primary bottleneck, and the full bound breakdown in
// its deterministic pipeline order (components absent on an arch — e.g. a
// disabled LSD — print as "-").
func printRow(engine *facile.Engine, code []byte, arch, note string) {
	ana, err := engine.Analyze(context.Background(), facile.Request{
		Code: code, Arch: arch, Mode: facile.Loop,
	})
	if err != nil {
		log.Fatal(err)
	}
	pred := ana.Prediction
	primary := "-"
	if len(pred.Bottlenecks) > 0 {
		primary = pred.Bottlenecks[0]
	}
	fmt.Printf("%-10s %8.2f  %-12s", arch, pred.CyclesPerIteration, primary)
	// ana.Bounds is already in pipeline order; walk it against the full
	// component list so absent components keep their column.
	next := 0
	for _, c := range comps {
		if next < len(ana.Bounds) && ana.Bounds[next].Component == c {
			fmt.Printf(" %10.2f", ana.Bounds[next].Cycles)
			next++
		} else {
			fmt.Printf(" %10s", "-")
		}
	}
	fmt.Printf("  %-6s", pred.FrontEndSource)
	if note != "" {
		fmt.Printf("  %s", note)
	}
	fmt.Println()
}
