// Uarch-evolution: exploit Facile's interpretability to compare
// microarchitecture generations (the paper's §6.4): for a fixed workload,
// how do the per-component bounds and the counterfactual headroom evolve
// from Sandy Bridge to Rocket Lake?
package main

import (
	"fmt"
	"log"

	"facile"
	"facile/internal/asm"
	"facile/internal/x86"
)

func main() {
	// A vectorized accumulate-multiply kernel with a mixed profile:
	// loads, FP multiply-add work, integer bookkeeping.
	instrs := []asm.Instr{
		asm.Mk(x86.MOVUPS, 128, asm.R(x86.X0), asm.M(x86.RDI, 0)),
		asm.Mk(x86.MULPS, 128, asm.R(x86.X0), asm.R(x86.X4)),
		asm.Mk(x86.ADDPS, 128, asm.R(x86.X1), asm.R(x86.X0)),
		asm.Mk(x86.MOVUPS, 128, asm.R(x86.X2), asm.M(x86.RDI, 16)),
		asm.Mk(x86.MULPS, 128, asm.R(x86.X2), asm.R(x86.X4)),
		asm.Mk(x86.ADDPS, 128, asm.R(x86.X3), asm.R(x86.X2)),
		asm.Mk(x86.ADD, 64, asm.R(x86.RDI), asm.I(32)),
		asm.Mk(x86.DEC, 64, asm.R(x86.RCX)),
		asm.MkCC(x86.JCC, x86.CondNE, 64, asm.I(-37)),
	}
	code, err := asm.EncodeBlock(instrs)
	if err != nil {
		log.Fatal(err)
	}

	lines, _ := facile.Disassemble(code)
	fmt.Println("Kernel:")
	for _, l := range lines {
		fmt.Println("  " + l)
	}

	// One engine for all generations: the kernel is decoded and predicted
	// once per arch, and the second table below is served from the cache.
	engine, err := facile.NewEngine(facile.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-5s %8s  %-12s %s\n", "uArch", "cyc/it", "bottleneck", "speedup if component idealized")
	archs := facile.ArchInfos()
	// Oldest first.
	for i := len(archs) - 1; i >= 0; i-- {
		arch := archs[i].Name
		pred, err := engine.Predict(code, arch, facile.Loop)
		if err != nil {
			log.Fatal(err)
		}
		sp, err := engine.Speedups(code, arch, facile.Loop)
		if err != nil {
			log.Fatal(err)
		}
		primary := "-"
		if len(pred.Bottlenecks) > 0 {
			primary = pred.Bottlenecks[0]
		}
		fmt.Printf("%-5s %8.2f  %-12s", arch, pred.CyclesPerIteration, primary)
		for _, c := range []string{"Ports", "Precedence", "Issue"} {
			fmt.Printf(" %s=%.2fx", c, sp[c])
		}
		fmt.Println()
	}

	// The full bound vector per generation (components absent on a
	// generation — e.g. the LSD where it is disabled — print as "-"), plus
	// the front end that actually serves the loop.
	fmt.Println("\nPer-component bounds by generation (cycles/iteration):")
	fmt.Printf("%-5s", "uArch")
	comps := facile.ComponentNames()
	for _, c := range comps {
		fmt.Printf(" %10s", c)
	}
	fmt.Printf(" %10s\n", "FE source")
	for i := len(archs) - 1; i >= 0; i-- {
		arch := archs[i].Name
		pred, err := engine.Predict(code, arch, facile.Loop)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s", arch)
		for _, c := range comps {
			if v, ok := pred.Components[c]; ok {
				fmt.Printf(" %10.2f", v)
			} else {
				fmt.Printf(" %10s", "-")
			}
		}
		fmt.Printf(" %10s\n", pred.FrontEndSource)
	}
}
