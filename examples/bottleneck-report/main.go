// Bottleneck-report: demonstrate Facile's interpretability on blocks with
// deliberately different bottlenecks — the use case of the paper's §6.4.
// Each block goes through one Engine.Analyze call at DetailFull, whose
// structured Report names the limiting pipeline component, marks the
// responsible instructions, and quantifies the counterfactual gain of
// idealizing each component — renderable as text (below) or JSON.
package main

import (
	"context"
	"fmt"
	"log"

	"facile"
	"facile/internal/asm"
	"facile/internal/x86"
)

func main() {
	cases := []struct {
		title  string
		mode   facile.Mode
		instrs []asm.Instr
	}{
		{
			title: "dependency-chain-bound: pointer chase",
			mode:  facile.Loop,
			instrs: []asm.Instr{
				asm.Mk(x86.MOV, 64, asm.R(x86.RAX), asm.M(x86.RAX, 0)),
				asm.Mk(x86.DEC, 64, asm.R(x86.RCX)),
				asm.MkCC(x86.JCC, x86.CondNE, 64, asm.I(-9)),
			},
		},
		{
			title: "port-bound: three multiplies per iteration",
			mode:  facile.Loop,
			instrs: []asm.Instr{
				asm.Mk(x86.IMUL, 64, asm.R(x86.RAX), asm.R(x86.RSI)),
				asm.Mk(x86.IMUL, 64, asm.R(x86.RBX), asm.R(x86.RSI)),
				asm.Mk(x86.IMUL, 64, asm.R(x86.RDX), asm.R(x86.RSI)),
				asm.Mk(x86.DEC, 64, asm.R(x86.RCX)),
				asm.MkCC(x86.JCC, x86.CondNE, 64, asm.I(-16)),
			},
		},
		{
			title: "predecode-bound: length-changing prefixes (unrolled)",
			mode:  facile.Unroll,
			instrs: []asm.Instr{
				asm.Mk(x86.ADD, 16, asm.R(x86.RAX), asm.I(0x1234)),
				asm.Mk(x86.ADD, 16, asm.R(x86.RBX), asm.I(0x2345)),
				asm.Mk(x86.ADD, 16, asm.R(x86.RDX), asm.I(0x3456)),
			},
		},
		{
			title: "issue-bound: wide independent ALU work",
			mode:  facile.Loop,
			instrs: []asm.Instr{
				asm.Mk(x86.MOV, 64, asm.R(x86.RAX), asm.I(1)),
				asm.Mk(x86.MOV, 64, asm.R(x86.RBX), asm.I(2)),
				asm.Mk(x86.MOV, 64, asm.R(x86.RDX), asm.I(3)),
				asm.Mk(x86.MOV, 64, asm.R(x86.RSI), asm.I(4)),
				asm.Mk(x86.MOV, 64, asm.R(x86.RDI), asm.I(5)),
				asm.Mk(x86.MOV, 64, asm.R(x86.R8), asm.I(6)),
				asm.Mk(x86.MOV, 64, asm.R(x86.R9), asm.I(7)),
				asm.Mk(x86.MOV, 64, asm.R(x86.R10), asm.I(8)),
				asm.Mk(x86.TEST, 64, asm.R(x86.R15), asm.R(x86.R15)),
				asm.MkCC(x86.JCC, x86.CondNE, 64, asm.I(-60)),
			},
		},
	}

	engine, err := facile.NewEngine(facile.EngineConfig{Archs: []string{"SKL"}})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range cases {
		code, err := asm.EncodeBlock(c.instrs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("==== %s ====\n", c.title)
		ana, err := engine.Analyze(context.Background(), facile.Request{
			Code: code, Arch: "SKL", Mode: c.mode, Detail: facile.DetailFull,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(ana.Report.Text())
		// The same analysis answers structured questions without another
		// engine call: the report object and the sorted speedup list are
		// views of one cached bound computation.
		top := ana.Speedups[0]
		fmt.Printf("(structured: primary=%s, best counterfactual: %s %.2fx)\n\n",
			ana.Report.PrimaryBottleneck, top.Component, top.Factor)
	}
	// Analyses (and their rendered reports) are memoized alongside the
	// cached predictions: re-analyzing any block above is a pure cache hit.
	st := engine.Stats()
	fmt.Printf("engine cache: %d entries, %d misses\n", st.Entries, st.Misses)
}
