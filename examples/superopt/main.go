// Superopt: use Facile as the cost model of a tiny superoptimizer — the
// paper's motivating use case (§1: "superoptimizers explore a vast space of
// possible instruction sequences... the speed of the model is a limiting
// factor").
//
// The toy search problem: compute rax = rbx * K for a set of constants K,
// choosing among semantically equivalent candidate sequences (imul with an
// immediate, lea-based multiply decompositions, shift+add sequences). Facile
// ranks the candidates per microarchitecture; because its predictions also
// name the bottleneck, the superoptimizer can report *why* a candidate wins.
package main

import (
	"context"
	"fmt"
	"log"

	"facile"
	"facile/internal/asm"
	"facile/internal/x86"
)

// candidate is one instruction sequence implementing rax = rbx * K,
// pre-verified for semantic equivalence (this toy focuses on the cost model).
type candidate struct {
	name   string
	instrs []asm.Instr
}

// candidatesForMul enumerates equivalent sequences for rax = rbx * k.
func candidatesForMul(k int64) []candidate {
	var out []candidate

	// Always available: imul with immediate.
	out = append(out, candidate{
		name: fmt.Sprintf("imul rax, rbx, %d", k),
		instrs: []asm.Instr{
			asm.Mk(x86.IMUL, 64, asm.R(x86.RAX), asm.R(x86.RBX), asm.I(k)),
		},
	})

	// lea decompositions for k in {3, 5, 9}: rax = rbx + rbx*(k-1).
	switch k {
	case 3, 5, 9:
		out = append(out, candidate{
			name: fmt.Sprintf("lea rax, [rbx+rbx*%d]", k-1),
			instrs: []asm.Instr{
				asm.Mk(x86.LEA, 64, asm.R(x86.RAX), asm.MX(x86.RBX, x86.RBX, uint8(k-1), 0)),
			},
		})
	}

	// Power of two: mov + shift.
	if k > 0 && k&(k-1) == 0 {
		shift := 0
		for v := k; v > 1; v >>= 1 {
			shift++
		}
		out = append(out, candidate{
			name: fmt.Sprintf("mov rax, rbx; shl rax, %d", shift),
			instrs: []asm.Instr{
				asm.Mk(x86.MOV, 64, asm.R(x86.RAX), asm.R(x86.RBX)),
				asm.Mk(x86.SHL, 64, asm.R(x86.RAX), asm.I(int64(shift))),
			},
		})
	}

	// k = 2^n + 1 via lea chain: lea rax,[rbx+rbx*2^n] handles 3,5,9 above;
	// k = 6, 10: lea + add (rax = rbx*k via lea *then* shift).
	switch k {
	case 6:
		out = append(out, candidate{
			name: "lea rax, [rbx+rbx*2]; add rax, rax",
			instrs: []asm.Instr{
				asm.Mk(x86.LEA, 64, asm.R(x86.RAX), asm.MX(x86.RBX, x86.RBX, 2, 0)),
				asm.Mk(x86.ADD, 64, asm.R(x86.RAX), asm.R(x86.RAX)),
			},
		})
	case 10:
		out = append(out, candidate{
			name: "lea rax, [rbx+rbx*4]; add rax, rax",
			instrs: []asm.Instr{
				asm.Mk(x86.LEA, 64, asm.R(x86.RAX), asm.MX(x86.RBX, x86.RBX, 4, 0)),
				asm.Mk(x86.ADD, 64, asm.R(x86.RAX), asm.R(x86.RAX)),
			},
		})
	}
	return out
}

func main() {
	arch := "SKL"
	// A search loop queries the cost model for many candidates that share
	// instructions (and often repeat outright); the engine memoizes decoded
	// blocks and descriptor derivation across the whole search.
	engine, err := facile.NewEngine(facile.EngineConfig{Archs: []string{arch}})
	if err != nil {
		log.Fatal(err)
	}
	for _, k := range []int64{3, 5, 6, 8, 10, 1000} {
		fmt.Printf("==== rax = rbx * %d on %s ====\n", k, arch)
		cands := candidatesForMul(k)
		reqs := make([]facile.Request, len(cands))
		for i, cand := range cands {
			code, err := asm.EncodeBlock(cand.instrs)
			if err != nil {
				log.Fatal(err)
			}
			// DetailSpeedups: the ranking and the winner's headroom come out
			// of the same single bound computation per candidate.
			reqs[i] = facile.Request{Code: code, Arch: arch, Mode: facile.Unroll, Detail: facile.DetailSpeedups}
		}
		results := engine.AnalyzeBatch(context.Background(), reqs)
		best := -1
		bestTP := 0.0
		for i, res := range results {
			if res.Err != nil {
				log.Fatal(res.Err)
			}
			pred := res.Analysis.Prediction
			fmt.Printf("  %-36s %5.2f cyc/iter  bottleneck %v\n",
				cands[i].name, pred.CyclesPerIteration, pred.Bottlenecks)
			if best < 0 || pred.CyclesPerIteration < bestTP {
				best, bestTP = i, pred.CyclesPerIteration
			}
		}
		// The winner's remaining headroom is the head of its sorted speedup
		// list — no map iteration, no second engine call.
		top := results[best].Analysis.Speedups[0]
		fmt.Printf("  -> selected: %s (%.2f cycles)", cands[best].name, bestTP)
		if top.Factor > 1 {
			fmt.Printf("; idealizing %s would gain another %.2fx", top.Component, top.Factor)
		}
		fmt.Print("\n\n")
	}
	stats := engine.Stats()
	fmt.Printf("engine cache: %d entries, %d hits, %d misses\n",
		stats.Entries, stats.Hits, stats.Misses)
}
