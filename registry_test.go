package facile

import (
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var testBlock, _ = hex.DecodeString("4801d8480fafc3") // add rax,rbx; imul rax,rbx

func TestArchInfoParameters(t *testing.T) {
	infos := ArchInfos()
	if len(infos) < 9 {
		t.Fatalf("got %d infos, want >= 9", len(infos))
	}
	byName := make(map[string]ArchInfo)
	for _, info := range infos {
		byName[info.Name] = info
	}
	skl := byName["SKL"]
	if skl.Gen != "SKL" || skl.IssueWidth != 4 || skl.IDQSize != 64 ||
		skl.LSDEnabled || skl.NumPorts != 8 {
		t.Fatalf("SKL info misses key parameters: %+v", skl)
	}
	icl := byName["ICL"]
	if icl.Gen != "ICL" || icl.IssueWidth != 5 || !icl.LSDEnabled || icl.NumPorts != 10 {
		t.Fatalf("ICL info misses key parameters: %+v", icl)
	}
}

func TestRegisterArchVariant(t *testing.T) {
	reg := NewArchRegistry()
	info, err := reg.Derive("SKL-LSD-t1", "SKL", []byte(`{"lsd_enabled": true}`))
	if err != nil {
		t.Fatal(err)
	}
	if !info.LSDEnabled || info.Gen != "SKL" || info.CPU != "" {
		t.Fatalf("variant info wrong: %+v", info)
	}
	if _, err := reg.Derive("SKL-LSD-t1", "SKL", nil); !errors.Is(err, ErrDuplicateArch) {
		t.Fatalf("duplicate register = %v, want ErrDuplicateArch", err)
	}
	// The variant's spec is exportable and recreates it elsewhere.
	spec, err := reg.Spec("skl-lsd-t1")
	if err != nil {
		t.Fatal(err)
	}
	reg2 := NewArchRegistry()
	info2, err := reg2.LoadSpec(spec)
	if err != nil {
		t.Fatalf("re-loading exported spec: %v", err)
	}
	if info2 != info {
		t.Fatalf("spec round trip through a second registry diverges:\n got %+v\nwant %+v", info2, info)
	}
}

// TestEngineServesRegistryDynamically: an arch registered after engine
// construction must be predictable without rebuilding the engine, and warm
// queries must be cache hits.
func TestEngineServesRegistryDynamically(t *testing.T) {
	reg := NewArchRegistry()
	e, err := NewEngine(EngineConfig{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := predictT(e, testBlock, "SKL-W6", Loop); err == nil {
		t.Fatal("unregistered arch predicted")
	}
	if _, err := reg.Derive("SKL-W6", "SKL", []byte(`{"issue_width": 6, "retire_width": 6}`)); err != nil {
		t.Fatal(err)
	}
	if !e.HasArch("skl-w6") {
		t.Fatal("engine does not see the new arch")
	}
	p1, err := predictT(e, testBlock, "SKL-W6", Loop)
	if err != nil {
		t.Fatalf("predicting on a runtime-registered arch: %v", err)
	}
	if p1.Arch != "SKL-W6" {
		t.Fatalf("Arch = %q, want canonical SKL-W6", p1.Arch)
	}
	before := e.Stats()
	p2, err := predictT(e, testBlock, "skl-w6", Loop) // case-folded: same cache entry
	if err != nil {
		t.Fatal(err)
	}
	after := e.Stats()
	if after.Hits != before.Hits+1 || after.Misses != before.Misses {
		t.Fatalf("custom-arch repeat query was not a warm hit: before %+v after %+v", before, after)
	}
	if p2.CyclesPerIteration != p1.CyclesPerIteration || p2.Arch != "SKL-W6" {
		t.Fatalf("cached prediction differs: %+v vs %+v", p2, p1)
	}
	// The engine's arch list includes the registration.
	found := false
	for _, a := range e.Archs() {
		if a == "SKL-W6" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Archs() = %v misses SKL-W6", e.Archs())
	}
}

// TestEngineRegistryIsolation: same-named arches in two registries must not
// share cache entries or builders.
func TestEngineRegistryIsolation(t *testing.T) {
	regA, regB := NewArchRegistry(), NewArchRegistry()
	// Same name, different machines: A's X is SKL-like, B's X single-ported.
	if _, err := regA.Derive("X", "SKL", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := regB.Derive("X", "SKL", []byte(`{"role_ports": {"alu": [0], "mul": [1]}}`)); err != nil {
		t.Fatal(err)
	}
	eA, err := NewEngine(EngineConfig{Registry: regA})
	if err != nil {
		t.Fatal(err)
	}
	eB, err := NewEngine(EngineConfig{Registry: regB})
	if err != nil {
		t.Fatal(err)
	}
	// Four independent adds: port-bound, so the single-ported X differs.
	portsBlock, _ := hex.DecodeString("4801d84801d94801da4801de")
	pA, err := predictT(eA, portsBlock, "X", Loop)
	if err != nil {
		t.Fatal(err)
	}
	pB, err := predictT(eB, portsBlock, "X", Loop)
	if err != nil {
		t.Fatal(err)
	}
	if pA.CyclesPerIteration == pB.CyclesPerIteration {
		t.Fatalf("two different machines named X predict identically (%.2f); registry scoping is broken",
			pA.CyclesPerIteration)
	}
	ref, _ := predictT(eA, portsBlock, "SKL", Loop)
	if pA.CyclesPerIteration != ref.CyclesPerIteration {
		t.Fatalf("A's X (= SKL copy) predicts %.2f, SKL %.2f", pA.CyclesPerIteration, ref.CyclesPerIteration)
	}
}

// TestEngineRestricted: a fixed arch set ignores later registrations and
// says so usefully.
func TestEngineRestricted(t *testing.T) {
	reg := NewArchRegistry()
	e, err := NewEngine(EngineConfig{Registry: reg, Archs: []string{"skl", "RKL"}})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Restricted() {
		t.Fatal("engine should report Restricted")
	}
	// Canonicalized configured order.
	if got := fmt.Sprint(e.Archs()); got != "[SKL RKL]" {
		t.Fatalf("Archs() = %s", got)
	}
	if _, err := predictT(e, testBlock, "SKL", Loop); err != nil {
		t.Fatal(err)
	}
	_, err = predictT(e, testBlock, "HSW", Loop)
	if err == nil || !strings.Contains(err.Error(), "not configured") {
		t.Fatalf("out-of-set arch error = %v", err)
	}
	if _, err := reg.Derive("NEW", "SKL", nil); err != nil {
		t.Fatal(err)
	}
	if e.HasArch("NEW") {
		t.Fatal("restricted engine must not extend to later registrations")
	}
	if _, err := NewEngine(EngineConfig{Archs: []string{"P4"}}); err == nil {
		t.Fatal("unknown restricted arch accepted at construction")
	}
}

// TestConcurrentRegisterPredict races runtime registration against
// prediction traffic on the same engine (run under -race).
func TestConcurrentRegisterPredict(t *testing.T) {
	reg := NewArchRegistry()
	e, err := NewEngine(EngineConfig{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			archs := []string{"SKL", "RKL", "SNB", "ICL"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := predictT(e, testBlock, archs[(i+w)%len(archs)], Loop); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 32; i++ {
		name := fmt.Sprintf("RACE-%d", i)
		if _, err := reg.Derive(name, "SKL", []byte(`{"lsd_enabled": true}`)); err != nil {
			t.Fatal(err)
		}
		// Newly registered arches predict while others register.
		if _, err := predictT(e, testBlock, name, Loop); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestLoadSpecDirOrderIndependent: an overlay may sort before the full
// spec it is based on; the directory loader must resolve it anyway.
func TestLoadSpecDirOrderIndependent(t *testing.T) {
	dir := t.TempDir()
	// "a-variant.json" sorts before its base "z-base.json".
	if err := os.WriteFile(filepath.Join(dir, "a-variant.json"),
		[]byte(`{"name": "ZB-LSD", "base": "ZBASE", "lsd_enabled": true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := NewArchRegistry().Spec("SKL")
	if err != nil {
		t.Fatal(err)
	}
	base = []byte(strings.Replace(string(base), `"SKL"`, `"ZBASE"`, 1)) // rename the copy
	if err := os.WriteFile(filepath.Join(dir, "z-base.json"), base, 0o644); err != nil {
		t.Fatal(err)
	}
	reg := NewArchRegistry()
	infos, err := reg.LoadSpecDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("loaded %d specs, want 2: %+v", len(infos), infos)
	}
	if info, err := reg.Info("ZB-LSD"); err != nil || !info.LSDEnabled {
		t.Fatalf("variant not resolved: %+v, %v", info, err)
	}
	// A genuinely unresolvable base still fails, naming the stuck file.
	if err := os.WriteFile(filepath.Join(dir, "b-broken.json"),
		[]byte(`{"name": "B", "base": "NOWHERE"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = NewArchRegistry().LoadSpecDir(dir)
	if err == nil || !strings.Contains(err.Error(), "b-broken.json") {
		t.Fatalf("unresolvable base: err = %v", err)
	}
}

func TestPredictCaseInsensitiveArch(t *testing.T) {
	p, err := predictT(DefaultEngine(), testBlock, "skl", Loop)
	if err != nil {
		t.Fatal(err)
	}
	if p.Arch != "SKL" {
		t.Fatalf("Arch = %q, want canonical SKL", p.Arch)
	}
}
