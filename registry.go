package facile

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"facile/internal/bb"
	"facile/internal/uarch"
)

// ErrDuplicateArch reports an attempt to register a microarchitecture under
// a name (case-insensitively) already taken in the same registry; match it
// with errors.Is to distinguish conflicts from validation failures.
var ErrDuplicateArch = uarch.ErrDuplicate

// ErrArchRegistryFull reports that a registry reached its capacity backstop
// (uarch.MaxEntries); registered names are never evicted, so the cap bounds
// registry memory against unbounded registration.
var ErrArchRegistryFull = uarch.ErrRegistryFull

// ArchRegistry is a thread-safe collection of microarchitectures. The nine
// Table 1 microarchitectures are built in (loaded from declarative spec
// files embedded in the binary); additional ones can be opened at runtime —
// full spec files, or variant overlays of a registered base ("SKL but with
// the LSD enabled") — without recompiling anything.
//
// Every registry starts with the nine built-ins. Names are unique per
// registry (case-insensitively) and immutable once registered, and lookups
// are case-insensitive O(1). The process-wide DefaultRegistry backs the
// package-level Predict/Archs/RegisterArch API; independent registries
// (NewArchRegistry) isolate design-space experiments from each other and
// can be attached to an Engine via EngineConfig.Registry.
type ArchRegistry struct {
	r *uarch.Registry
}

// NewArchRegistry returns a fresh registry holding the nine built-in
// microarchitectures, independent of the default one.
func NewArchRegistry() *ArchRegistry {
	return &ArchRegistry{r: uarch.NewRegistry()}
}

// DefaultRegistry returns the process-wide registry used by the package-
// level API and by engines that do not configure their own.
func DefaultRegistry() *ArchRegistry {
	return &ArchRegistry{r: uarch.Default()}
}

// reg returns the wrapped registry, falling back to the default; it makes a
// nil *ArchRegistry (e.g. the zero EngineConfig) mean "the default".
func (ar *ArchRegistry) reg() *uarch.Registry {
	if ar == nil {
		return uarch.Default()
	}
	return ar.r
}

// LoadSpec parses a microarchitecture spec from JSON, validates it, and
// registers it. If the spec names a "base", it is an overlay: only the
// overridden fields need to be present. See docs/ARCHITECTURE.md for the
// spec format and README.md for a worked example.
func (ar *ArchRegistry) LoadSpec(data []byte) (ArchInfo, error) {
	cfg, err := ar.reg().Load(data)
	if err != nil {
		return ArchInfo{}, err
	}
	return infoFor(cfg), nil
}

// Derive registers a variant of base under name; overlay is a JSON object
// holding just the overridden spec fields (nil registers an exact copy).
//
//	reg.Derive("SKL-LSD", "SKL", []byte(`{"lsd_enabled": true}`))
func (ar *ArchRegistry) Derive(name, base string, overlay []byte) (ArchInfo, error) {
	cfg, err := ar.reg().Derive(name, base, overlay)
	if err != nil {
		return ArchInfo{}, err
	}
	return infoFor(cfg), nil
}

// Variant is an ephemeral microarchitecture: a validated design point
// derived from a registered base without being registered itself. Variants
// take no registry slot — enumerating a 2,000-point design-space grid can
// never hit ErrArchRegistryFull — and are invisible to name lookup, so they
// cannot collide with (or poison the cache-key versioning of) registered
// arches. Analyze a workload against one with Engine.AnalyzeVariantBatchN.
//
// A Variant memoizes its per-instruction descriptor state across calls and
// is safe for concurrent use.
type Variant struct {
	cfg    *uarch.Config
	bdOnce sync.Once
	bd     *bb.Builder
}

// Name returns the variant's name (as passed to DeriveVariant).
func (v *Variant) Name() string { return v.cfg.Name }

// Info returns the variant's parameter summary, in the same shape served
// for registered arches.
func (v *Variant) Info() ArchInfo { return infoFor(v.cfg) }

// Spec returns the variant's full declarative JSON spec — the document that
// would recreate it (via LoadSpec or DeriveVariant with no overlay).
func (v *Variant) Spec() ([]byte, error) {
	return uarch.SpecFromConfig(v.cfg).JSON()
}

// builder returns the variant's memoized block builder, creating it on
// first use.
func (v *Variant) builder() *bb.Builder {
	v.bdOnce.Do(func() { v.bd = bb.NewBuilder(v.cfg) })
	return v.bd
}

// DeriveVariant builds and validates a variant of base under name without
// registering it: overlay is a JSON object holding just the overridden spec
// fields, exactly as in Derive. Use it for ephemeral design points —
// parameter sweeps, what-if queries — that should not consume registry
// capacity; use Derive when the variant must be servable by name.
func (ar *ArchRegistry) DeriveVariant(name, base string, overlay []byte) (*Variant, error) {
	cfg, err := ar.reg().DeriveConfig(name, base, overlay)
	if err != nil {
		return nil, err
	}
	return &Variant{cfg: cfg}, nil
}

// LoadSpecDir loads every *.json spec file in dir and returns the
// registered arches. Files may reference each other as overlay bases in any
// order (and any filenames): loading retries files whose base is not yet
// registered until a pass makes no progress, so only genuinely unresolvable
// or invalid specs fail.
func (ar *ArchRegistry) LoadSpecDir(dir string) ([]ArchInfo, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("facile: no *.json spec files in %s", dir)
	}
	sort.Strings(paths) // deterministic registration order among independent specs
	pending := make(map[string][]byte, len(paths))
	var order []string
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		pending[path] = data
		order = append(order, path)
	}
	var out []ArchInfo
	lastErr := make(map[string]error)
	for len(pending) > 0 {
		progressed := false
		for _, path := range order {
			data, ok := pending[path]
			if !ok {
				continue
			}
			info, err := ar.LoadSpec(data)
			if err != nil {
				lastErr[path] = err
				continue
			}
			out = append(out, info)
			delete(pending, path)
			progressed = true
		}
		if !progressed {
			// Report the first (alphabetically) stuck file: an unresolvable
			// base, a base cycle, or a plainly invalid spec.
			for _, path := range order {
				if _, stuck := pending[path]; stuck {
					return out, fmt.Errorf("%s: %w", path, lastErr[path])
				}
			}
		}
	}
	return out, nil
}

// Archs returns the registered microarchitecture names: the nine built-ins
// first (newest first, paper Table 1), then runtime-registered ones in
// registration order.
func (ar *ArchRegistry) Archs() []string { return ar.reg().Names() }

// Infos returns details for every registered microarchitecture, in Archs
// order.
func (ar *ArchRegistry) Infos() []ArchInfo {
	cfgs := ar.reg().All()
	out := make([]ArchInfo, len(cfgs))
	for i, cfg := range cfgs {
		out[i] = infoFor(cfg)
	}
	return out
}

// Info returns the details of one microarchitecture (case-insensitive).
func (ar *ArchRegistry) Info(name string) (ArchInfo, error) {
	cfg, err := ar.reg().ByName(name)
	if err != nil {
		return ArchInfo{}, err
	}
	return infoFor(cfg), nil
}

// Has reports whether name (case-insensitively) is registered.
func (ar *ArchRegistry) Has(name string) bool { return ar.reg().Has(name) }

// Spec returns the declarative JSON spec of a registered microarchitecture
// — the exact document that would recreate it via LoadSpec.
func (ar *ArchRegistry) Spec(name string) ([]byte, error) {
	cfg, err := ar.reg().ByName(name)
	if err != nil {
		return nil, err
	}
	return uarch.SpecFromConfig(cfg).JSON()
}

// RegisterArch registers a variant of a built-in (or previously registered)
// microarchitecture in the default registry: overlay is a JSON object with
// just the overridden spec fields.
//
//	facile.RegisterArch("ICL-4W", "ICL", []byte(`{"issue_width": 4, "retire_width": 4}`))
func RegisterArch(name, base string, overlay []byte) (ArchInfo, error) {
	return DefaultRegistry().Derive(name, base, overlay)
}

// LoadArchSpec registers a microarchitecture spec (full or base+overlay
// JSON) in the default registry.
func LoadArchSpec(data []byte) (ArchInfo, error) {
	return DefaultRegistry().LoadSpec(data)
}

// LoadArchDir loads every *.json spec file in dir into the default
// registry (the --arch-dir flag of cmd/facile and cmd/facile-serve).
func LoadArchDir(dir string) ([]ArchInfo, error) {
	return DefaultRegistry().LoadSpecDir(dir)
}

// infoFor materializes the public ArchInfo view of a config.
func infoFor(cfg *uarch.Config) ArchInfo {
	return ArchInfo{
		Name:       cfg.Name,
		FullName:   cfg.FullName,
		CPU:        cfg.CPU,
		Released:   cfg.Released,
		Gen:        cfg.Gen.String(),
		IssueWidth: cfg.IssueWidth,
		IDQSize:    cfg.IDQSize,
		LSDEnabled: cfg.LSDEnabled,
		NumPorts:   cfg.NumPorts,
	}
}
