package facile

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"facile/internal/core"
)

// ErrBadRequest classifies every Analyze-boundary rejection of client input:
// an empty or oversized block, an invalid Mode or Detail, an unknown (or
// not-served) microarchitecture, or a block the decoder rejects. Match it
// with errors.Is to distinguish "the request was wrong" from infrastructure
// failures — servers map it to HTTP 400. The error text is unchanged from
// the pre-Analyze entry points, so existing message-matching callers keep
// working.
var ErrBadRequest = errors.New("facile: bad request")

// requestError is the uniform bad-request vocabulary: it carries the exact
// legacy message text while matching both ErrBadRequest and (when present)
// the underlying error via errors.Is/As.
type requestError struct {
	msg string
	err error // optional underlying cause
}

func (e *requestError) Error() string { return e.msg }

func (e *requestError) Unwrap() []error {
	if e.err != nil {
		return []error{ErrBadRequest, e.err}
	}
	return []error{ErrBadRequest}
}

func badRequestf(format string, args ...any) error {
	return &requestError{msg: fmt.Sprintf(format, args...)}
}

// asBadRequest wraps err into the ErrBadRequest vocabulary, preserving its
// text and identity. A nil or already-classified error passes through.
func asBadRequest(err error) error {
	if err == nil || errors.Is(err, ErrBadRequest) {
		return err
	}
	return &requestError{msg: err.Error(), err: err}
}

// errEmptyBlock keeps the historical message of the empty-input rejection.
var errEmptyBlock = &requestError{msg: "facile: empty basic block"}

// Detail selects how much of an Analysis Engine.Analyze materializes, so
// cheap callers pay nothing beyond the prediction itself. Each level
// includes the previous ones; the zero value is the cheapest.
type Detail uint8

const (
	// DetailPrediction computes the prediction and the per-component bound
	// breakdown only.
	DetailPrediction Detail = iota
	// DetailSpeedups additionally derives the counterfactual speedups
	// (a pure recombination of the already-computed bound vector).
	DetailSpeedups
	// DetailFull additionally builds the structured bottleneck Report.
	DetailFull

	numDetails
)

var detailNames = [numDetails]string{"prediction", "speedups", "full"}

func (d Detail) String() string {
	if d < numDetails {
		return detailNames[d]
	}
	return fmt.Sprintf("Detail(%d)", uint8(d))
}

// MarshalText renders the Detail in its wire vocabulary
// ("prediction", "speedups", "full").
func (d Detail) MarshalText() ([]byte, error) {
	if d >= numDetails {
		return nil, fmt.Errorf("facile: invalid detail %d", uint8(d))
	}
	return []byte(detailNames[d]), nil
}

// UnmarshalText parses the wire vocabulary accepted by ParseDetail.
func (d *Detail) UnmarshalText(text []byte) error {
	v, err := ParseDetail(string(text))
	if err != nil {
		return err
	}
	*d = v
	return nil
}

// ParseDetail maps the wire vocabulary onto a Detail: "prediction",
// "speedups", or "full".
func ParseDetail(s string) (Detail, error) {
	for d, name := range detailNames {
		if s == name {
			return Detail(d), nil
		}
	}
	return 0, badRequestf("facile: invalid detail %q (want \"prediction\", \"speedups\", or \"full\")", s)
}

// checkDetail rejects Detail values outside the defined constants, in the
// same boundary-validation spirit as checkMode.
func checkDetail(d Detail) error {
	if d >= numDetails {
		return badRequestf("facile: invalid detail %d (want DetailPrediction, DetailSpeedups, or DetailFull)", uint8(d))
	}
	return nil
}

// Request is the typed input of Engine.Analyze: one basic block, the target
// microarchitecture, the throughput notion, and how much of the analysis to
// materialize. The zero Detail selects the cheapest level.
type Request struct {
	// Code is the raw machine code of the basic block.
	Code []byte
	// Arch is the target microarchitecture name (case-insensitive; see
	// Archs).
	Arch string
	// Mode selects the throughput notion (Unroll/TPU or Loop/TPL).
	Mode Mode
	// Detail selects prediction-only, +speedups, or +report.
	Detail Detail
}

// ComponentBound is one component's entry in the deterministic breakdown of
// an Analysis: the bound it contributes to eq. 1/2 and whether it is a
// bottleneck (its bound equals the prediction). Breakdowns are ordered
// front-end first (the order of ComponentNames).
type ComponentBound struct {
	Component  string  `json:"component"`
	Cycles     float64 `json:"cycles"`
	Bottleneck bool    `json:"bottleneck"`
}

// Speedup is one component's counterfactual idealization speedup (paper
// Table 4): the factor by which the prediction would improve if the
// component were infinitely fast. Speedup lists are sorted by Factor,
// descending (ties break front-end first), so the first entry is always the
// most profitable component to idealize.
type Speedup struct {
	Component string  `json:"component"`
	Factor    float64 `json:"factor"`
}

// Analysis is the result of Engine.Analyze: one bound computation exposed as
// prediction, interpretation, and counterfactuals together. Analyses
// returned by an Engine are memoized and shared between callers — treat
// every field as read-only.
type Analysis struct {
	// Prediction is the throughput prediction itself.
	Prediction Prediction `json:"prediction"`
	// Bounds is the per-component breakdown in pipeline (front-end-first)
	// order; it replaces iterating the Prediction.Components map.
	Bounds []ComponentBound `json:"bounds"`
	// Speedups holds the counterfactual speedups sorted descending; nil
	// unless the request asked for DetailSpeedups or DetailFull.
	Speedups []Speedup `json:"speedups,omitempty"`
	// Report is the structured bottleneck report; nil unless the request
	// asked for DetailFull. Render it with Report.Text or marshal it as
	// JSON.
	Report *Report `json:"report,omitempty"`
}

// AnalysisResult is the outcome of one Request of an AnalyzeBatch call.
type AnalysisResult struct {
	Analysis *Analysis
	Err      error
}

// componentBounds materializes the ordered typed breakdown of a core
// prediction.
func componentBounds(p *core.Prediction) []ComponentBound {
	out := make([]ComponentBound, 0, core.NumComponents)
	p.EachBound(func(c core.Component, cycles float64, bottleneck bool) {
		out = append(out, ComponentBound{Component: c.String(), Cycles: cycles, Bottleneck: bottleneck})
	})
	return out
}

// componentBoundsSlab is componentBounds with the breakdown carved from a
// batch worker's slab instead of a per-block allocation. Across a chunk the
// breakdowns land contiguously — one flat block×component slab.
func componentBoundsSlab(p *core.Prediction, sc *batchScratch) []ComponentBound {
	out := sc.boundSlab(bits.OnesCount8(uint8(p.Bounds.Present)))
	i := 0
	p.EachBound(func(c core.Component, cycles float64, bottleneck bool) {
		out[i] = ComponentBound{Component: c.String(), Cycles: cycles, Bottleneck: bottleneck}
		i++
	})
	return out
}

// speedupList materializes the sorted speedup list from an already-computed
// bound vector: one Bounds.Speedups recombination, then a stable descending
// sort (ties keep pipeline order).
func speedupList(b *core.Bounds, m core.Mode) []Speedup {
	sp := b.Speedups(m)
	set := core.Set(core.SpeedupComponents(m)...)
	out := make([]Speedup, 0, core.NumComponents)
	// Components iterate in pipeline order, so the stable sort's tie-break
	// is front-end first.
	for c := core.Component(0); c < core.NumComponents; c++ {
		if set.Has(c) {
			out = append(out, Speedup{Component: c.String(), Factor: sp[c]})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Factor > out[j].Factor })
	return out
}

// defaultEngine backs DefaultEngine: one lazily constructed process-wide
// Engine over the default registry.
var defaultEngine = sync.OnceValue(func() *Engine {
	e, err := NewEngine(EngineConfig{})
	if err != nil {
		// The zero EngineConfig cannot fail validation.
		panic("facile: default engine: " + err.Error())
	}
	return e
})

// DefaultEngine returns the process-wide shared Engine: all
// microarchitectures of the default registry, default cache size, one
// worker per CPU. Programs that want their own cache bounds, registry, or
// microarchitecture subset should construct an Engine with NewEngine
// instead.
func DefaultEngine() *Engine { return defaultEngine() }
