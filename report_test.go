package facile_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"facile"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden report files")

// reportCases pins the three structurally distinct Explain reports: a
// TPU block marked up with the contended-port group, a TPL loop served by
// the LSD, and a TPL loop forced onto the legacy decode path by the JCC
// erratum.
var reportCases = []struct {
	name string
	hex  string
	arch string
	mode facile.Mode
}{
	{
		// Three imuls: port-bound on p1, instructions marked "P".
		name: "tpu_ports",
		hex:  "480fafc3 480fafcb 480fafd3",
		arch: "SKL",
		mode: facile.Unroll,
	},
	{
		// add rax,1; dec rcx; jne: small loop on HSW, served by the LSD,
		// precedence-bound through the dec/jne counter chain.
		name: "tpl_lsd",
		hex:  "4883c001 48ffc9 75f8",
		arch: "HSW",
		mode: facile.Loop,
	},
	{
		// 30 bytes of nops + jne ending exactly on the 32-byte boundary:
		// the JCC erratum forces the Predec/Dec front end on SKL.
		name: "tpl_jcc_erratum",
		hex: "6666666666662e0f1f840000000000" +
			"6666666666662e0f1f840000000000" +
			"75de",
		arch: "SKL",
		mode: facile.Loop,
	},
}

func TestExplainGolden(t *testing.T) {
	for _, tc := range reportCases {
		t.Run(tc.name, func(t *testing.T) {
			code := decode(t, tc.hex)
			report, err := explainText(facile.DefaultEngine(), code, tc.arch, tc.mode)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "report_"+tc.name+".golden")
			if *updateGolden {
				if err := os.WriteFile(path, []byte(report), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if report != string(want) {
				t.Errorf("report differs from %s (run with -update to regenerate):\ngot:\n%s\nwant:\n%s",
					path, report, want)
			}
		})
	}
}

// TestExplainGoldenStructure spot-checks the load-bearing content of each
// golden case independently of exact formatting, so a legitimate -update
// cannot silently bless a semantically broken report.
func TestExplainGoldenStructure(t *testing.T) {
	checks := map[string][]string{
		"tpu_ports":       {"Primary bottleneck: Ports", " P ", "contention on ports p1"},
		"tpl_lsd":         {"front end served by: LSD", "Primary bottleneck: Precedence", " D "},
		"tpl_jcc_erratum": {"front end served by:", "Predec", "Dec"},
	}
	for _, tc := range reportCases {
		t.Run(tc.name, func(t *testing.T) {
			report, err := explainText(facile.DefaultEngine(), decode(t, tc.hex), tc.arch, tc.mode)
			if err != nil {
				t.Fatal(err)
			}
			for _, want := range checks[tc.name] {
				if !strings.Contains(report, want) {
					t.Errorf("report missing %q:\n%s", want, report)
				}
			}
			// Every report carries the counterfactual table.
			if !strings.Contains(report, "Counterfactual speedups") {
				t.Errorf("report missing speedup table:\n%s", report)
			}
		})
	}
}
