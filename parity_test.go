package facile

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"facile/internal/bhive"
)

// The arch-parity golden file pins the predictions of the nine Table 1
// microarchitectures as computed from the seed hardcoded Go tables, across
// TPU (unrolled), TPL (loop), and TPL-with-LSD-serving blocks. The embedded
// spec files must reproduce these predictions byte-identically: the specs
// are the source of truth for the microarchitecture layer, and this gate is
// what allowed the hardcoded tables to be deleted.
//
// Regenerate (only for a deliberate, reviewed model change) with:
//
//	go test -run TestArchParity -update-arch-parity .
var updateArchParity = flag.Bool("update-arch-parity", false,
	"rewrite testdata/arch_parity.json from the current implementation")

const archParityFile = "arch_parity.json"

// parityRecord is one golden prediction. Components carries the full bound
// vector so a spec error that shifts a non-binding bound still fails the
// gate, not just one that moves the maximum.
type parityRecord struct {
	Code           string             `json:"code"`
	Arch           string             `json:"arch"`
	Mode           string             `json:"mode"`
	Cycles         float64            `json:"cycles_per_iteration"`
	Components     map[string]float64 `json:"components"`
	Bottlenecks    []string           `json:"bottlenecks"`
	FrontEndSource string             `json:"front_end_source,omitempty"`
}

// parityBlocks returns the evaluation blocks of the gate: a deterministic
// slice of the BHive-like corpus plus handcrafted tight loops small enough
// for the LSD on every generation that has one.
func parityBlocks() [][2]string {
	var blocks [][2]string // (hex, mode)
	for _, bm := range bhive.Generate(7, 40) {
		blocks = append(blocks,
			[2]string{hex.EncodeToString(bm.Code), "unroll"},
			[2]string{hex.EncodeToString(bm.LoopCode), "loop"})
	}
	// Tight loops that fit every IDQ: dec+jnz, add+dec+jnz with a load, and
	// a two-µop FP loop. These pin the LSD (and its unrolling behavior)
	// where enabled, and the DSB path on SKL/CLX where SKL150 disables it.
	for _, h := range []string{
		"48ffc975f9",               // dec rcx; jnz
		"488b0748ffc048ffc975f2",   // mov rax,[rdi]; inc rax; dec rcx; jnz
		"f30f58c148ffc975f4",       // addss xmm0,xmm1; dec rcx; jnz
		"4801d8480fafc348ffc975f0", // add rax,rbx; imul rax,rbx; dec rcx; jnz
	} {
		blocks = append(blocks, [2]string{h, "loop"})
	}
	return blocks
}

// parityArchs pins the gate to the nine Table 1 arches by name: the gate
// must not drift if some other test (or an -arch-dir user) registers extra
// arches in the default registry.
var parityArchs = []string{"RKL", "TGL", "ICL", "CLX", "SKL", "BDW", "HSW", "IVB", "SNB"}

// parityRecords computes the full record set from the current
// implementation (whatever uarch source is live), in deterministic order.
func parityRecords(t *testing.T) []parityRecord {
	t.Helper()
	var out []parityRecord
	lsdServed := 0
	for _, arch := range parityArchs {
		for _, bk := range parityBlocks() {
			code, err := hex.DecodeString(bk[0])
			if err != nil {
				t.Fatalf("bad parity block %q: %v", bk[0], err)
			}
			mode := Unroll
			if bk[1] == "loop" {
				mode = Loop
			}
			pred, err := predictT(DefaultEngine(), code, arch, mode)
			if err != nil {
				t.Fatalf("Predict(%s, %s, %s): %v", bk[0], arch, bk[1], err)
			}
			if pred.FrontEndSource == "LSD" {
				lsdServed++
			}
			out = append(out, parityRecord{
				Code:           bk[0],
				Arch:           arch,
				Mode:           bk[1],
				Cycles:         pred.CyclesPerIteration,
				Components:     pred.Components,
				Bottlenecks:    pred.Bottlenecks,
				FrontEndSource: pred.FrontEndSource,
			})
		}
	}
	if lsdServed == 0 {
		t.Fatal("parity corpus exercises no LSD-served block; the TPL-LSD mode is uncovered")
	}
	return out
}

func marshalParity(t *testing.T, recs []parityRecord) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(recs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestArchParity is the hardcoded-vs-spec parity gate: predictions from the
// embedded spec files must be byte-identical to the golden captured from the
// seed hardcoded tables, for all nine arches across TPU/TPL/TPL-LSD.
func TestArchParity(t *testing.T) {
	got := marshalParity(t, parityRecords(t))
	path := filepath.Join("testdata", archParityFile)
	if *updateArchParity {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update-arch-parity to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		var w, g []parityRecord
		if json.Unmarshal(want, &w) != nil || json.Unmarshal(got, &g) != nil || len(w) != len(g) {
			t.Fatalf("arch parity golden mismatch: record sets differ in shape (got %d bytes, want %d)", len(got), len(want))
		}
		shown := 0
		for i := range w {
			if gi := marshalOne(t, g[i]); !bytes.Equal(gi, marshalOne(t, w[i])) && shown < 5 {
				t.Errorf("parity mismatch for arch=%s mode=%s code=%s:\n got: %+v\nwant: %+v",
					w[i].Arch, w[i].Mode, w[i].Code, g[i], w[i])
				shown++
			}
		}
		t.Fatal("embedded specs do not reproduce the seed hardcoded-table predictions")
	}
}

func marshalOne(t *testing.T, r parityRecord) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
