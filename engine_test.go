package facile_test

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"
	"unsafe"

	"facile"
	"facile/internal/bhive"
	"facile/internal/eval"
)

func newTestEngine(t *testing.T, cfg facile.EngineConfig) *facile.Engine {
	t.Helper()
	e, err := facile.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineMatchesPredict(t *testing.T) {
	e := newTestEngine(t, facile.EngineConfig{})
	codes := [][]byte{
		decode(t, "4801d8480fafc3"),
		decode(t, "480fafc348ffc975f7"),
		decode(t, "4803074883c70848ffc975f2"),
	}
	for _, arch := range facile.Archs() {
		for _, mode := range []facile.Mode{facile.Unroll, facile.Loop} {
			for _, code := range codes {
				want, err := predict(facile.DefaultEngine(), code, arch, mode)
				if err != nil {
					t.Fatal(err)
				}
				// Query twice: the second answer comes from the cache.
				for pass := 0; pass < 2; pass++ {
					got, err := predict(e, code, arch, mode)
					if err != nil {
						t.Fatal(err)
					}
					if got.CyclesPerIteration != want.CyclesPerIteration {
						t.Fatalf("%s/%v pass %d: engine %v, Predict %v",
							arch, mode, pass, got.CyclesPerIteration, want.CyclesPerIteration)
					}
					if len(got.Bottlenecks) == 0 || got.Bottlenecks[0] != want.Bottlenecks[0] {
						t.Fatalf("%s/%v: bottleneck mismatch: %v vs %v",
							arch, mode, got.Bottlenecks, want.Bottlenecks)
					}
				}
			}
		}
	}
}

func TestEngineCacheAccounting(t *testing.T) {
	e := newTestEngine(t, facile.EngineConfig{Archs: []string{"SKL"}})
	a := decode(t, "4801d8")
	b := decode(t, "480fafc3")

	if _, err := predict(e, a, "SKL", facile.Loop); err != nil {
		t.Fatal(err)
	}
	if _, err := predict(e, a, "SKL", facile.Loop); err != nil {
		t.Fatal(err)
	}
	if _, err := predict(e, b, "SKL", facile.Loop); err != nil {
		t.Fatal(err)
	}
	// Same code, different mode: a distinct cache entry.
	if _, err := predict(e, a, "SKL", facile.Unroll); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Misses != 3 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 3 misses / 1 hit", st)
	}
	if st.Entries != 3 {
		t.Fatalf("entries = %d, want 3", st.Entries)
	}
	if st.Evictions != 0 {
		t.Fatalf("evictions = %d, want 0", st.Evictions)
	}
}

func TestEngineCacheEviction(t *testing.T) {
	e := newTestEngine(t, facile.EngineConfig{Archs: []string{"SKL"}, CacheSize: 2})
	codes := [][]byte{
		decode(t, "4801d8"),
		decode(t, "480fafc3"),
		decode(t, "48ffc9"),
	}
	for _, code := range codes {
		if _, err := predict(e, code, "SKL", facile.Loop); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want capacity 2", st.Entries)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// The evicted (least recently used) entry is recomputed on demand.
	if _, err := predict(e, codes[0], "SKL", facile.Loop); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Misses != 4 {
		t.Fatalf("misses = %d, want 4 (re-miss after eviction)", st.Misses)
	}
}

func TestEngineErrorsCached(t *testing.T) {
	e := newTestEngine(t, facile.EngineConfig{Archs: []string{"SKL"}})
	bad := []byte{0xD9, 0xC0} // x87, undecodable
	for i := 0; i < 2; i++ {
		if _, err := predict(e, bad, "SKL", facile.Loop); err == nil {
			t.Fatal("undecodable block must error")
		}
	}
	st := e.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("error entries must be cached: %+v", st)
	}
}

func TestEngineArchRestriction(t *testing.T) {
	e := newTestEngine(t, facile.EngineConfig{Archs: []string{"SKL", "RKL"}})
	if got := e.Archs(); len(got) != 2 || got[0] != "SKL" || got[1] != "RKL" {
		t.Fatalf("Archs() = %v", got)
	}
	code := decode(t, "4801d8")
	// SNB exists but is outside this engine's configured set.
	if _, err := predict(e, code, "SNB", facile.Loop); err == nil {
		t.Fatal("unconfigured arch must error")
	}
	// Entirely unknown arch names error too.
	if _, err := predict(e, code, "???", facile.Loop); err == nil {
		t.Fatal("unknown arch must error")
	}
	if _, err := facile.NewEngine(facile.EngineConfig{Archs: []string{"NOPE"}}); err == nil {
		t.Fatal("NewEngine with unknown arch must error")
	}
}

func TestEnginePredictBatchOrderingAndErrors(t *testing.T) {
	e := newTestEngine(t, facile.EngineConfig{})
	corpus := bhive.Generate(eval.DefaultSeed, 40)
	var reqs []blockReq
	for i, bm := range corpus {
		arch := facile.Archs()[i%len(facile.Archs())]
		reqs = append(reqs, blockReq{Code: bm.LoopCode, Arch: arch, Mode: facile.Loop})
	}
	// Interleave failures: empty code and an unknown arch.
	reqs = append(reqs, blockReq{Code: nil, Arch: "SKL", Mode: facile.Loop})
	reqs = append(reqs, blockReq{Code: decode(t, "90"), Arch: "???", Mode: facile.Loop})

	results := predictBatch(e, reqs)
	if len(results) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(results), len(reqs))
	}
	for i, res := range results[:len(corpus)] {
		want, err := predict(facile.DefaultEngine(), reqs[i].Code, reqs[i].Arch, reqs[i].Mode)
		if (err == nil) != (res.Err == nil) {
			t.Fatalf("req %d: error mismatch: %v vs %v", i, err, res.Err)
		}
		if err == nil && res.Prediction.CyclesPerIteration != want.CyclesPerIteration {
			t.Fatalf("req %d: %v, want %v", i, res.Prediction.CyclesPerIteration, want.CyclesPerIteration)
		}
	}
	if results[len(reqs)-2].Err == nil {
		t.Fatal("empty block request must fail")
	}
	if results[len(reqs)-1].Err == nil {
		t.Fatal("unknown arch request must fail")
	}
}

// TestEngineConcurrent hammers one engine from many goroutines with
// overlapping keys; run with -race. Every result must equal the one-shot
// prediction for its request.
func TestEngineConcurrent(t *testing.T) {
	e := newTestEngine(t, facile.EngineConfig{Archs: []string{"SKL", "RKL"}, CacheSize: 16})
	corpus := bhive.Generate(eval.DefaultSeed, 30)
	want := make(map[int]float64)
	var reqs []blockReq
	for i, bm := range corpus {
		arch := "SKL"
		if i%2 == 1 {
			arch = "RKL"
		}
		req := blockReq{Code: bm.LoopCode, Arch: arch, Mode: facile.Loop}
		p, err := predict(facile.DefaultEngine(), req.Code, req.Arch, req.Mode)
		if err != nil {
			continue
		}
		want[len(reqs)] = p.CyclesPerIteration
		reqs = append(reqs, req)
	}

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 5; round++ {
				for i, res := range predictBatch(e, reqs) {
					if res.Err != nil {
						t.Errorf("req %d: %v", i, res.Err)
						return
					}
					if res.Prediction.CyclesPerIteration != want[i] {
						t.Errorf("req %d: got %v, want %v", i,
							res.Prediction.CyclesPerIteration, want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestEngineSpeedupsExplainSimulate(t *testing.T) {
	e := newTestEngine(t, facile.EngineConfig{Archs: []string{"SKL"}})
	code := decode(t, "480fafc348ffc975f7")

	wantSp, err := speedupMap(facile.DefaultEngine(), code, "SKL", facile.Loop)
	if err != nil {
		t.Fatal(err)
	}
	gotSp, err := speedupMap(e, code, "SKL", facile.Loop)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotSp) != len(wantSp) {
		t.Fatalf("speedups: %v vs %v", gotSp, wantSp)
	}
	for k, v := range wantSp {
		if gotSp[k] != v {
			t.Fatalf("speedup[%s] = %v, want %v", k, gotSp[k], v)
		}
	}

	wantRep, err := explainText(facile.DefaultEngine(), code, "SKL", facile.Loop)
	if err != nil {
		t.Fatal(err)
	}
	gotRep, err := explainText(e, code, "SKL", facile.Loop)
	if err != nil {
		t.Fatal(err)
	}
	if gotRep != wantRep {
		t.Fatalf("engine report differs from one-shot report:\n%s\nvs\n%s", gotRep, wantRep)
	}

	wantSim, err := facile.DefaultEngine().Simulate(code, "SKL", facile.Loop)
	if err != nil {
		t.Fatal(err)
	}
	gotSim, err := e.Simulate(code, "SKL", facile.Loop)
	if err != nil {
		t.Fatal(err)
	}
	if gotSim != wantSim {
		t.Fatalf("engine sim %v, one-shot sim %v", gotSim, wantSim)
	}
}

func TestEngineErrorPaths(t *testing.T) {
	e := newTestEngine(t, facile.EngineConfig{Archs: []string{"SKL"}})
	bad := []byte{0xD9, 0xC0}

	if _, err := speedupMap(e, nil, "SKL", facile.Loop); err == nil {
		t.Fatal("Engine.Speedups on empty input must error")
	}
	if _, err := speedupMap(e, bad, "SKL", facile.Loop); err == nil {
		t.Fatal("Engine.Speedups on undecodable input must error")
	}
	if _, err := explainText(e, bad, "SKL", facile.Loop); err == nil {
		t.Fatal("Engine.Explain on undecodable input must error")
	}
	if _, err := e.Simulate(nil, "SKL", facile.Loop); err == nil {
		t.Fatal("Engine.Simulate on empty input must error")
	}

	// The one-shot wrappers share the same error behavior.
	if _, err := speedupMap(facile.DefaultEngine(), nil, "SKL", facile.Loop); err == nil {
		t.Fatal("Speedups on empty input must error")
	}
	if _, err := speedupMap(facile.DefaultEngine(), bad, "SKL", facile.Loop); err == nil {
		t.Fatal("Speedups on undecodable input must error")
	}
	if _, err := facile.Disassemble(nil); err == nil {
		t.Fatal("Disassemble on empty input must error")
	}
	if _, err := facile.Disassemble(bad); err == nil {
		t.Fatal("Disassemble on undecodable input must error")
	}
}

// TestEngineMemoizesSpeedupsAndReports: the speedup list and the rendered
// report are memoized on the shared cached Analysis — a repeated query
// returns the identical objects instead of recomputing them.
func TestEngineMemoizesSpeedupsAndReports(t *testing.T) {
	e := newTestEngine(t, facile.EngineConfig{Archs: []string{"SKL"}})
	code := decode(t, "480fafc348ffc975f7")
	req := facile.Request{Code: code, Arch: "SKL", Mode: facile.Loop, Detail: facile.DetailFull}

	a1, err := e.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := e.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("warm Analyze rebuilt the Analysis: distinct pointers")
	}
	if len(a1.Speedups) > 0 &&
		reflect.ValueOf(a1.Speedups).Pointer() != reflect.ValueOf(a2.Speedups).Pointer() {
		t.Error("speedup list recomputed on a cache hit: distinct slices returned")
	}
	// Identical backing storage, not merely equal content: the rendering is
	// done once and memoized on the shared Report.
	r1, r2 := a1.Report.Text(), a2.Report.Text()
	if unsafe.StringData(r1) != unsafe.StringData(r2) {
		t.Error("report re-rendered on a cache hit: distinct strings returned")
	}

	// The memoized results must match an independent engine's computation.
	e2 := newTestEngine(t, facile.EngineConfig{Archs: []string{"SKL"}})
	wantSp, err := speedupMap(e2, code, "SKL", facile.Loop)
	if err != nil {
		t.Fatal(err)
	}
	gotSp, err := speedupMap(e, code, "SKL", facile.Loop)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSp, wantSp) {
		t.Errorf("memoized speedups %v != independent %v", gotSp, wantSp)
	}
	wantRep, err := explainText(e2, code, "SKL", facile.Loop)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != wantRep {
		t.Errorf("memoized report differs from independent engine:\n%s\nvs\n%s", r1, wantRep)
	}
}

// TestEngineInvalidMode: out-of-range Mode values must be rejected at the
// engine boundary, not silently treated as Unroll.
func TestEngineInvalidMode(t *testing.T) {
	e := newTestEngine(t, facile.EngineConfig{Archs: []string{"SKL"}})
	code := decode(t, "4801d8")
	bad := facile.Mode(7)
	if _, err := predict(e, code, "SKL", bad); err == nil {
		t.Error("Analyze must reject Mode(7)")
	}
	if _, err := speedupMap(e, code, "SKL", bad); err == nil {
		t.Error("Analyze at DetailSpeedups must reject Mode(7)")
	}
	if _, err := explainText(e, code, "SKL", bad); err == nil {
		t.Error("Analyze at DetailFull must reject Mode(7)")
	}
	if _, err := e.Simulate(code, "SKL", bad); err == nil {
		t.Error("Engine.Simulate must reject Mode(7)")
	}
	res := predictBatch(e, []blockReq{{Code: code, Arch: "SKL", Mode: bad}})
	if res[0].Err == nil {
		t.Error("AnalyzeBatchN must reject Mode(7)")
	}
	if st := e.Stats(); st.Entries != 0 {
		t.Errorf("invalid-mode requests must not populate the cache: %+v", st)
	}
}

// TestEngineStatsRace hammers Analyze and Stats concurrently at high
// parallelism; run with -race. Per-shard counters must stay exact: after the
// dust settles, hits+misses equals the total number of resolutions, and no
// hit or miss is lost to a data race.
func TestEngineStatsRace(t *testing.T) {
	e := newTestEngine(t, facile.EngineConfig{Archs: []string{"SKL"}, CacheShards: 8})
	corpus := bhive.Generate(eval.DefaultSeed, 16)
	var codes [][]byte
	for _, bm := range corpus {
		if _, err := predict(facile.DefaultEngine(), bm.LoopCode, "SKL", facile.Loop); err != nil {
			continue
		}
		codes = append(codes, bm.LoopCode)
	}
	if len(codes) == 0 {
		t.Fatal("no valid corpus blocks")
	}

	const workers, rounds = 16, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				code := codes[(w*rounds+r)%len(codes)]
				if _, err := predict(e, code, "SKL", facile.Loop); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				// Interleave reads with writes: Stats must be safe to call
				// while every shard is being updated.
				st := e.Stats()
				if st.Hits+st.Misses == 0 {
					t.Error("Stats lost all counters mid-run")
					return
				}
			}
		}(w)
	}
	wg.Wait()

	st := e.Stats()
	if got := st.Hits + st.Misses; got != workers*rounds {
		t.Fatalf("hits(%d)+misses(%d) = %d, want exactly %d resolutions",
			st.Hits, st.Misses, got, workers*rounds)
	}
	if st.Misses != uint64(len(codes)) {
		t.Fatalf("misses = %d, want one per distinct block (%d)", st.Misses, len(codes))
	}
	if st.Shards != 8 {
		t.Fatalf("shards = %d, want 8", st.Shards)
	}
}

// TestEngineCacheShards: shard-count configuration is validated and rounded,
// and sharding never changes resolution results or accounting semantics.
func TestEngineCacheShards(t *testing.T) {
	if _, err := facile.NewEngine(facile.EngineConfig{CacheShards: -1}); err == nil {
		t.Fatal("negative CacheShards must be rejected")
	}
	// Non-power-of-two counts round up.
	e := newTestEngine(t, facile.EngineConfig{Archs: []string{"SKL"}, CacheShards: 3})
	if st := e.Stats(); st.Shards != 4 {
		t.Fatalf("CacheShards 3 rounded to %d, want 4", st.Shards)
	}
	// The default is resolved from GOMAXPROCS and is a power of two.
	def := newTestEngine(t, facile.EngineConfig{Archs: []string{"SKL"}})
	st := def.Stats()
	if st.Shards == 0 || st.Shards&(st.Shards-1) != 0 {
		t.Fatalf("default shard count %d is not a positive power of two", st.Shards)
	}
	// Accounting matches the single-shard engine exactly.
	single := newTestEngine(t, facile.EngineConfig{Archs: []string{"SKL"}, CacheShards: 1})
	for _, e := range []*facile.Engine{e, single} {
		a := decode(t, "4801d8")
		for i := 0; i < 3; i++ {
			if _, err := predict(e, a, "SKL", facile.Loop); err != nil {
				t.Fatal(err)
			}
		}
		if st := e.Stats(); st.Misses != 1 || st.Hits != 2 {
			t.Fatalf("%d-shard stats = %+v, want 1 miss / 2 hits", st.Shards, st)
		}
	}
}

// TestEngineMaxCacheBytes: entries report sizes, Stats exposes the total,
// and a byte budget evicts cold entries while keeping predictions correct.
func TestEngineMaxCacheBytes(t *testing.T) {
	unbounded := newTestEngine(t, facile.EngineConfig{Archs: []string{"SKL"}})
	code := decode(t, "4803074883c70848ffc975f2")
	if _, err := explainText(unbounded, code, "SKL", facile.Loop); err != nil {
		t.Fatal(err)
	}
	if st := unbounded.Stats(); st.SizeBytes <= 0 {
		t.Fatalf("SizeBytes = %d, want > 0 after a cached analysis", st.SizeBytes)
	}

	// A tight budget on a single shard forces byte-budget evictions.
	e := newTestEngine(t, facile.EngineConfig{
		Archs: []string{"SKL"}, CacheShards: 1, MaxCacheBytes: 2048,
	})
	corpus := bhive.Generate(eval.DefaultSeed, 24)
	want := make(map[int]float64)
	var codes [][]byte
	for _, bm := range corpus {
		p, err := predict(facile.DefaultEngine(), bm.LoopCode, "SKL", facile.Loop)
		if err != nil {
			continue
		}
		want[len(codes)] = p.CyclesPerIteration
		codes = append(codes, bm.LoopCode)
	}
	for round := 0; round < 2; round++ {
		for i, c := range codes {
			p, err := predict(e, c, "SKL", facile.Loop)
			if err != nil {
				t.Fatal(err)
			}
			if p.CyclesPerIteration != want[i] {
				t.Fatalf("block %d round %d: %v, want %v", i, round,
					p.CyclesPerIteration, want[i])
			}
		}
	}
	st := e.Stats()
	if st.Evictions == 0 {
		t.Fatalf("stats = %+v, want byte-budget evictions", st)
	}
	if st.SizeBytes > 2048 {
		t.Fatalf("SizeBytes = %d exceeds the 2048-byte budget", st.SizeBytes)
	}
}

// TestEngineBatchFasterThanOneShot is a coarse regression guard for the
// engine's amortization on repeated workloads; BenchmarkEngineVsPredict
// quantifies the speedup properly. The baseline is an uncached engine
// (CacheSize < 0) — the one-shot cost of recomputing every request — since
// warm queries against the default engine come from its cache.
func TestEngineBatchFasterThanOneShot(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	corpus := bhive.Generate(eval.DefaultSeed, 50)
	var reqs []blockReq
	for _, bm := range corpus {
		if _, err := predict(facile.DefaultEngine(), bm.LoopCode, "SKL", facile.Loop); err != nil {
			continue
		}
		reqs = append(reqs, blockReq{Code: bm.LoopCode, Arch: "SKL", Mode: facile.Loop})
	}
	if len(reqs) == 0 {
		t.Fatal("no valid corpus blocks")
	}
	distinct := len(reqs)
	for len(reqs) < 1000 {
		reqs = append(reqs, reqs[len(reqs)%distinct])
	}

	uncached := newTestEngine(t, facile.EngineConfig{Archs: []string{"SKL"}, CacheSize: -1})
	start := time.Now()
	for _, r := range reqs {
		if _, err := predict(uncached, r.Code, r.Arch, r.Mode); err != nil {
			t.Fatal(err)
		}
	}
	oneShot := time.Since(start)

	e := newTestEngine(t, facile.EngineConfig{Archs: []string{"SKL"}})
	start = time.Now()
	for _, res := range predictBatch(e, reqs) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	batched := time.Since(start)

	t.Logf("one-shot %v, engine %v (%.1fx)", oneShot, batched,
		float64(oneShot)/float64(batched))
	// The benchmark shows >5x; assert a conservative 2x here so the test is
	// robust to loaded CI machines and -race overhead.
	if batched*2 > oneShot {
		t.Fatalf("engine batch (%v) not at least 2x faster than one-shot (%v)", batched, oneShot)
	}
}
