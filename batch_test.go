package facile

import (
	"context"
	"encoding/hex"
	"testing"
)

func mustDecode(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// batchTestCodes are small valid blocks with distinct analyses.
var batchTestCodes = []string{
	"4801d8",           // add rax,rbx
	"4801d8480fafc3",   // add rax,rbx; imul rax,rbx
	"480fafc0480fafc0", // imul rax,rax x2 (dependence chain)
	"48ffc04883c103",   // inc rax; add rcx,3
}

func batchRequests(t *testing.T, n int) []Request {
	t.Helper()
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{
			Code: mustDecode(t, batchTestCodes[i%len(batchTestCodes)]),
			Arch: "SKL",
			Mode: Loop,
		}
	}
	return reqs
}

func TestGroupBatchHomogeneous(t *testing.T) {
	reqs := batchRequests(t, 8)
	order, groups := groupBatch(reqs)
	if order != nil {
		t.Fatalf("homogeneous batch produced an order slice: %v", order)
	}
	if len(groups) != 1 || groups[0] != (batchChunk{0, 8}) {
		t.Fatalf("homogeneous batch groups = %v, want [{0 8}]", groups)
	}
}

func TestGroupBatchHeterogeneous(t *testing.T) {
	reqs := batchRequests(t, 9)
	reqs[1].Arch = "ICL"
	reqs[4].Mode = Unroll
	reqs[7].Arch = "ICL"
	order, groups := groupBatch(reqs)
	if order == nil {
		t.Fatal("heterogeneous batch produced no order slice")
	}
	// The order must be a permutation of the batch.
	seen := make([]bool, len(reqs))
	for _, idx := range order {
		if idx < 0 || idx >= len(reqs) || seen[idx] {
			t.Fatalf("order %v is not a permutation", order)
		}
		seen[idx] = true
	}
	// Groups must tile [0, n) and be internally uniform in (arch, mode).
	pos := 0
	for _, g := range groups {
		if g.lo != pos || g.hi <= g.lo {
			t.Fatalf("groups %v do not tile the batch", groups)
		}
		first := reqs[order[g.lo]]
		for i := g.lo; i < g.hi; i++ {
			r := reqs[order[i]]
			if r.Arch != first.Arch || r.Mode != first.Mode {
				t.Fatalf("group %v mixes (arch, mode): %q/%v vs %q/%v",
					g, first.Arch, first.Mode, r.Arch, r.Mode)
			}
		}
		pos = g.hi
	}
	if pos != len(reqs) {
		t.Fatalf("groups %v cover %d of %d positions", groups, pos, len(reqs))
	}
	// Stability: within a group, original indices stay ascending.
	for _, g := range groups {
		for i := g.lo + 1; i < g.hi; i++ {
			if order[i] < order[i-1] {
				t.Fatalf("group %v is not stable: order %v", g, order)
			}
		}
	}
}

func TestSplitChunks(t *testing.T) {
	cases := []struct {
		groups  []batchChunk
		workers int
		n       int
	}{
		{[]batchChunk{{0, 10}}, 4, 10},
		{[]batchChunk{{0, 3}, {3, 1000}, {1000, 1024}}, 8, 1024},
		{[]batchChunk{{0, 1}}, 16, 1},
		{[]batchChunk{{0, 5000}}, 2, 5000},
	}
	for _, tc := range cases {
		chunks := splitChunks(tc.groups, tc.workers, tc.n)
		pos, gi := 0, 0
		for _, c := range chunks {
			if c.lo != pos || c.hi <= c.lo {
				t.Fatalf("workers=%d: chunks %v do not tile [0, %d)", tc.workers, chunks, tc.n)
			}
			if c.hi-c.lo > maxChunkLen {
				t.Fatalf("workers=%d: chunk %v exceeds maxChunkLen", tc.workers, c)
			}
			// A chunk must stay inside one group.
			for tc.groups[gi].hi <= c.lo {
				gi++
			}
			if c.lo < tc.groups[gi].lo || c.hi > tc.groups[gi].hi {
				t.Fatalf("workers=%d: chunk %v crosses group %v", tc.workers, c, tc.groups[gi])
			}
			pos = c.hi
		}
		if pos != tc.n {
			t.Fatalf("workers=%d: chunks %v cover %d of %d", tc.workers, chunks, pos, tc.n)
		}
	}
}

// TestAnalyzeBatchWorkerClamping covers the scheduler's degenerate worker
// counts: more workers than items, exactly one worker (the serial path), and
// the engine-pool default. All must produce index-identical results.
func TestAnalyzeBatchWorkerClamping(t *testing.T) {
	e, err := NewEngine(EngineConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	reqs := batchRequests(t, 3)
	reqs[1].Mode = Unroll // exercise grouping too
	want := make([]*Analysis, len(reqs))
	for i, req := range reqs {
		want[i], err = e.Analyze(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{64, 1, 0, -5} {
		out := e.AnalyzeBatchN(context.Background(), reqs, workers)
		if len(out) != len(reqs) {
			t.Fatalf("workers=%d: got %d results for %d requests", workers, len(out), len(reqs))
		}
		for i := range out {
			if out[i].Err != nil {
				t.Fatalf("workers=%d item %d: %v", workers, i, out[i].Err)
			}
			if out[i].Analysis != want[i] {
				t.Fatalf("workers=%d item %d: batch analysis differs from Analyze", workers, i)
			}
		}
	}
}

// TestAnalyzeBatchChunkedMatchesSerial pins the determinism contract: the
// chunked parallel kernel must produce index-identical results to the serial
// path, for both homogeneous and heterogeneous (grouped, reordered) batches,
// with per-item errors staying on their own index.
func TestAnalyzeBatchChunkedMatchesSerial(t *testing.T) {
	e, err := NewEngine(EngineConfig{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	reqs := batchRequests(t, 200)
	for i := range reqs {
		switch i % 5 {
		case 1:
			reqs[i].Arch = "ICL"
		case 2:
			reqs[i].Mode = Unroll
		case 3:
			reqs[i].Arch = "no-such-arch" // per-item arch error
		}
	}
	reqs[17].Code = nil           // per-item empty-code error
	reqs[33].Code = []byte{0x06}  // per-item decode error
	reqs[49].Detail = Detail(200) // per-item detail error
	serial := e.AnalyzeBatchN(context.Background(), reqs, 1)
	parallel := e.AnalyzeBatchN(context.Background(), reqs, 8)
	for i := range reqs {
		se, pe := serial[i].Err, parallel[i].Err
		if (se == nil) != (pe == nil) {
			t.Fatalf("item %d: serial err %v, parallel err %v", i, se, pe)
		}
		if se != nil {
			if se.Error() != pe.Error() {
				t.Fatalf("item %d: serial err %q, parallel err %q", i, se, pe)
			}
			continue
		}
		if serial[i].Analysis != parallel[i].Analysis {
			t.Fatalf("item %d: serial and parallel analyses differ", i)
		}
	}
}

// TestAnalyzeBatchCancellation checks both cancellation shapes: a batch
// submitted on a dead context fails every item with the context error, and a
// batch cancelled mid-flight still returns one deterministic result per
// request, each either a completed analysis or the context error.
func TestAnalyzeBatchCancellation(t *testing.T) {
	e, err := NewEngine(EngineConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	reqs := batchRequests(t, 64)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		out := e.AnalyzeBatchN(ctx, reqs, workers)
		for i := range out {
			if out[i].Err != context.Canceled {
				t.Fatalf("workers=%d item %d: err = %v, want context.Canceled", workers, i, out[i].Err)
			}
		}
	}

	// Mid-flight: cancel from a racing goroutine. Whatever the interleaving,
	// every slot must hold exactly one of (analysis, context error).
	ctx2, cancel2 := context.WithCancel(context.Background())
	go cancel2()
	out := e.AnalyzeBatchN(ctx2, reqs, 4)
	if len(out) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(out), len(reqs))
	}
	for i := range out {
		switch {
		case out[i].Err == nil && out[i].Analysis != nil:
		case out[i].Err == context.Canceled && out[i].Analysis == nil:
		default:
			t.Fatalf("item %d: inconsistent result {analysis: %v, err: %v}",
				i, out[i].Analysis != nil, out[i].Err)
		}
	}
}

// TestAnalyzeCodeBufferReuse pins the durable-entry contract: the engine
// never retains caller memory, so a caller may clobber its Code buffer the
// moment a call returns without corrupting the cached analysis or block.
func TestAnalyzeCodeBufferReuse(t *testing.T) {
	e, err := NewEngine(EngineConfig{Archs: []string{"SKL"}})
	if err != nil {
		t.Fatal(err)
	}
	buf := mustDecode(t, "4801d8480fafc3")
	first, err := e.Analyze(context.Background(), Request{Code: buf, Arch: "SKL", Mode: Loop})
	if err != nil {
		t.Fatal(err)
	}
	want := first.Prediction.CyclesPerIteration
	sim1, err := e.Simulate(buf, "SKL", Loop)
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] = 0xCC // clobber the caller's buffer
	}
	again, err := e.Analyze(context.Background(), Request{Code: mustDecode(t, "4801d8480fafc3"), Arch: "SKL", Mode: Loop})
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Fatal("warm re-analysis did not hit the cached entry")
	}
	if again.Prediction.CyclesPerIteration != want {
		t.Fatalf("cached prediction corrupted by buffer reuse: %v != %v",
			again.Prediction.CyclesPerIteration, want)
	}
	// The cached block must also be intact: the simulator walks its decoded
	// instructions.
	sim2, err := e.Simulate(mustDecode(t, "4801d8480fafc3"), "SKL", Loop)
	if err != nil {
		t.Fatal(err)
	}
	if sim1 != sim2 {
		t.Fatalf("cached block corrupted by buffer reuse: simulate %v != %v", sim1, sim2)
	}
}
